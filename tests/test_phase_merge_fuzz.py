"""Differential fuzzing of whole-phase round merging.

The engine's ``merge_phases`` switch collapses the flag-passing, simulation
and rewind phases into one :meth:`~repro.network.transport.NoisyNetwork.exchange_phase`
dispatch per phase whenever the adversary honours the slot-addressed contract
(:attr:`~repro.adversary.base.Adversary.slot_addressed`).  The switch is
advertised as **bit-identical**: not "statistically equivalent", but the same
``SimulationResult``, the same :class:`~repro.network.channel.ChannelStats`
counters, the same round clock and the same adversary end state (RNG stream
positions, budget counters) as the per-round lockstep schedule.

This suite pins that claim differentially: hypothesis draws a workload
(scheme x topology x stock adversary x seed x observability mode x packed
flag), runs it twice — once on the reference profile (``merge_phases=False``,
``packed=False``: per-round schedule, symbol-sequence transport) and once on
the fast profile (``merge_phases=True`` plus the drawn ``packed`` mode, which
routes the meeting-points exchange through ``exchange_window_packed``'s
``(bits, present)`` plane pairs) — and requires every observable to match
exactly.  One case uses a deliberately non-slot-addressed adversary to pin
the fallback: the merge switch must be silently ignored (zero merged
dispatches) while the packed transport, which is legal for *every* adversary
(``corrupt_window_packed`` is contract-pinned bit-identical), still runs.

The observability mode covers the flight recorder too: a run under an
ambient :class:`~repro.obs.recorder.FlightRecorder` must stay bit-identical
(results, stats, budgets, RNG positions), and the *recorded* corruption
events must agree across schedules up to emission order (the merged path
emits per link at commit; the lockstep path emits round by round — same
multiset, different interleaving).

Reproducing a failure
---------------------

Hypothesis prints the failing example and a reproduction seed on failure.
Re-run a specific derivation deterministically with::

    PYTHONPATH=src python -m pytest tests/test_phase_merge_fuzz.py \
        --hypothesis-seed=<seed>

(the ``<seed>`` is printed in the failure report), or paste the printed
``@reproduce_failure`` decorator onto the test.  The examples budget is
deliberately small (the suite runs two full simulations per example); crank
``max_examples`` up locally for a deeper soak.
"""

from __future__ import annotations

import json
from contextlib import nullcontext

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.base import NoiselessAdversary
from repro.adversary.contract import _state_snapshot
from repro.adversary.oblivious import AdditiveObliviousAdversary, FixingObliviousAdversary
from repro.adversary.strategies import (
    BurstAdversary,
    CompositeAdversary,
    DeletionAdversary,
    LinkTargetedAdversary,
    RandomNoiseAdversary,
)
from repro.core.config import DEFAULT_ENGINE_CONFIG
from repro.core.engine import InteractiveCodingSimulator
from repro.core.parameters import scheme_by_name
from repro.network.topologies import (
    line_topology,
    random_connected_topology,
    ring_topology,
    star_topology,
)
from repro.obs.context import use_obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.protocols.random_protocol import RandomProtocol
from repro.utils.rng import make_rng

_FUZZ = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])

_SCHEMES = ("algorithm_crs", "algorithm_a", "algorithm_b")

_TOPOLOGIES = {
    "line4": lambda seed: line_topology(4),
    "ring5": lambda seed: ring_topology(5),
    "star5": lambda seed: star_topology(5),
    "random5": lambda seed: random_connected_topology(5, 0.4, seed=seed),
}


def _oblivious_pattern(graph, seed, values, density=0.02, horizon=600):
    """A deterministic sparse (round, link) -> value pattern over the run."""
    rng = make_rng(seed)
    pattern = {}
    for round_index in range(horizon):
        for sender, receiver in graph.directed_edges():
            if rng.random() < density:
                pattern[(round_index, sender, receiver)] = rng.choice(values)
    return pattern


#: name -> builder(graph, seed) for every adversary family under fuzz.  All
#: but the last are slot-addressed; "stateful-fallback" pins that the switch
#: is a no-op for adversaries that truthfully report slot_addressed=False.
_ADVERSARIES = {
    "noiseless": lambda graph, seed: NoiselessAdversary(),
    "additive": lambda graph, seed: AdditiveObliviousAdversary(
        pattern=_oblivious_pattern(graph, seed, (1, 2))
    ),
    "fixing": lambda graph, seed: FixingObliviousAdversary(
        pattern=_oblivious_pattern(graph, seed, (0, 1, None))
    ),
    "random-noise-slot": lambda graph, seed: RandomNoiseAdversary(
        corruption_probability=0.01,
        insertion_probability=0.002,
        seed=seed,
        slot_addressed=True,
    ),
    "deletion-slot": lambda graph, seed: DeletionAdversary(
        deletion_probability=0.01, seed=seed, slot_addressed=True
    ),
    "link-targeted-slot": lambda graph, seed: LinkTargetedAdversary(
        target=graph.edges[seed % len(graph.edges)],
        corruption_probability=0.05,
        max_corruptions=None,
        seed=seed,
        slot_addressed=True,
    ),
    "burst-slot": lambda graph, seed: BurstAdversary(
        start_round=5 + seed % 20, end_round=40 + seed % 60, max_corruptions=None, seed=seed,
        slot_addressed=True,
    ),
    "composite-slot": lambda graph, seed: CompositeAdversary(
        components=(
            BurstAdversary(
                start_round=10, end_round=30, max_corruptions=None, seed=seed, slot_addressed=True
            ),
            RandomNoiseAdversary(
                corruption_probability=0.005,
                insertion_probability=0.001,
                seed=seed + 1,
                slot_addressed=True,
            ),
        )
    ),
    "stateful-fallback": lambda graph, seed: RandomNoiseAdversary(
        corruption_probability=0.01, insertion_probability=0.002, seed=seed
    ),
}


def _workload(topology_name, seed):
    graph = _TOPOLOGIES[topology_name](seed)
    inputs = {party: (seed * 31 + party * 7) % 1024 for party in graph.nodes}
    protocol = RandomProtocol(graph, inputs, num_rounds=8, density=0.5, seed=seed + 1)
    return graph, protocol


#: Observability modes a fuzz case may run under; "recorder" puts an ambient
#: FlightRecorder around construction *and* run (the engine and network
#: capture it at construction time).
_OBS_MODES = ("dark", "metrics", "recorder")


def _run(scheme_name, topology_name, adversary_name, seed, merge, obs_mode="dark", packed=True):
    """One full simulation; returns (simulator, result, recorder-or-None).

    ``merge`` / ``packed`` select the execution profile via
    :class:`~repro.core.config.EngineConfig`; the reference runs of this suite
    pass both as ``False`` (per-round, symbol-sequence transport)."""
    graph, protocol = _workload(topology_name, seed)
    adversary = _ADVERSARIES[adversary_name](graph, seed)
    config = DEFAULT_ENGINE_CONFIG.with_overrides(merge_phases=merge, packed=packed)
    # A ring big enough to never drop: event-multiset comparison between the
    # two schedules needs the complete record (retention under overflow is
    # emission-order-dependent, which is exactly what differs).
    recorder = FlightRecorder(capacity=1_000_000) if obs_mode == "recorder" else None
    if obs_mode == "dark":
        scope = nullcontext()
    else:
        scope = use_obs(
            metrics=MetricsRegistry() if obs_mode == "metrics" else None,
            recorder=recorder,
        )
    with scope:
        simulator = InteractiveCodingSimulator(
            protocol, scheme=scheme_by_name(scheme_name), adversary=adversary, seed=seed,
            config=config,
        )
        result = simulator.run()
    return simulator, result, recorder


def _result_fingerprint(result):
    return (
        result.success,
        result.outputs,
        result.reference_outputs,
        result.metrics,
        result.channel_summary,
        result.iterations_run,
        result.iterations_budget,
        result.num_real_chunks,
        result.final_link_agreement,
        result.randomness_exchange_agreed,
    )


def _assert_bit_identical(reference_run, merged_run):
    reference_sim, reference = reference_run[:2]
    merged_sim, merged = merged_run[:2]
    assert _result_fingerprint(merged) == _result_fingerprint(reference)
    assert vars(merged_sim.network.stats) == vars(reference_sim.network.stats)
    assert merged_sim.network.current_round == reference_sim.network.current_round
    # RNG stream positions and budget counters: the merged schedule must
    # consume the adversary's state exactly like lockstep did.
    assert _state_snapshot(merged_sim.adversary) == _state_snapshot(reference_sim.adversary)
    assert reference_sim.network.merged_dispatches == 0


def _events_by_kind(recorder):
    """The recorder's ring split into (corruption events, everything else)."""
    corruption, rest = [], []
    for event in recorder._events:
        (corruption if event["kind"] == "corruption" else rest).append(event)
    return corruption, rest


def _event_key(event):
    return json.dumps(event, sort_keys=True, default=str)


def _assert_same_recording(reference_recorder, merged_recorder):
    """Both schedules must record the same protocol events.

    Corruption events are compared as multisets (the merged transport emits
    per link at phase commit, the lockstep transport round by round — same
    slots, different interleaving).  Engine- and session-emitted events
    (meeting points, rewinds, hash collisions, Φ) follow the same
    runtime-iteration order under both schedules, so they must match in
    sequence, not just as sets.
    """
    assert reference_recorder.events_dropped == 0
    assert merged_recorder.events_dropped == 0
    ref_corruption, ref_rest = _events_by_kind(reference_recorder)
    merged_corruption, merged_rest = _events_by_kind(merged_recorder)
    assert sorted(map(_event_key, merged_corruption)) == sorted(map(_event_key, ref_corruption))
    assert list(map(_event_key, merged_rest)) == list(map(_event_key, ref_rest))


class TestPhaseMergeDifferential:
    @_FUZZ
    @given(
        scheme_name=st.sampled_from(_SCHEMES),
        topology_name=st.sampled_from(sorted(_TOPOLOGIES)),
        adversary_name=st.sampled_from(sorted(_ADVERSARIES)),
        seed=st.integers(0, 10_000),
        obs_mode=st.sampled_from(_OBS_MODES),
        packed=st.booleans(),
    )
    def test_merged_schedule_is_bit_identical(
        self, scheme_name, topology_name, adversary_name, seed, obs_mode, packed
    ):
        reference_run = _run(
            scheme_name, topology_name, adversary_name, seed, False, obs_mode, packed=False
        )
        merged_run = _run(
            scheme_name, topology_name, adversary_name, seed, True, obs_mode, packed=packed
        )
        _assert_bit_identical(reference_run, merged_run)
        if obs_mode == "recorder":
            _assert_same_recording(reference_run[2], merged_run[2])
        merged_sim = merged_run[0]
        assert reference_run[0].network.packed_dispatches == 0
        if packed:
            # The packed meeting-points exchange runs for every adversary —
            # corrupt_window_packed is contract-pinned bit-identical.
            assert merged_sim.network.packed_dispatches > 0
        else:
            assert merged_sim.network.packed_dispatches == 0
        if adversary_name == "stateful-fallback":
            # slot_addressed is truthfully False: the switch must be ignored.
            assert not merged_sim.adversary.slot_addressed
            assert merged_sim.network.merged_dispatches == 0
        else:
            assert merged_sim.adversary.slot_addressed
            assert merged_sim.network.merged_dispatches > 0

    @_FUZZ
    @given(
        adversary_name=st.sampled_from(sorted(set(_ADVERSARIES) - {"stateful-fallback"})),
        seed=st.integers(0, 10_000),
        obs_mode=st.sampled_from(tuple(mode for mode in _OBS_MODES if mode != "dark")),
    )
    def test_merged_schedule_is_obs_invariant(self, adversary_name, seed, obs_mode):
        """Observability (metrics or recorder) must not perturb the merged
        schedule (and vice versa)."""
        dark_run = _run("algorithm_crs", "ring5", adversary_name, seed, True, "dark")
        observed_run = _run("algorithm_crs", "ring5", adversary_name, seed, True, obs_mode)
        assert _result_fingerprint(observed_run[1]) == _result_fingerprint(dark_run[1])
        assert vars(observed_run[0].network.stats) == vars(dark_run[0].network.stats)
        assert observed_run[0].network.merged_dispatches == dark_run[0].network.merged_dispatches


class TestMergedDispatchObservability:
    def test_merged_dispatch_counter_is_flushed(self):
        registry = MetricsRegistry()
        with use_obs(metrics=registry):
            simulator, _, _ = _run("algorithm_crs", "line4", "noiseless", 3, True, "dark")
        counters = registry.snapshot()["counters"]
        assert counters["transport.merged_dispatches"] == simulator.network.merged_dispatches
        assert counters["transport.merged_dispatches"] > 0

    def test_reference_schedule_never_merges(self):
        registry = MetricsRegistry()
        with use_obs(metrics=registry):
            _run("algorithm_crs", "line4", "noiseless", 3, False, "dark")
        counters = registry.snapshot()["counters"]
        assert "transport.merged_dispatches" not in counters

    def test_recorder_sees_corruptions_on_merged_schedule(self):
        """The merged transport must feed the flight recorder per slot: one
        corruption event per changed slot, agreeing with the channel stats."""
        simulator, _, recorder = _run(
            "algorithm_crs", "ring5", "random-noise-slot", 7, True, "recorder"
        )
        corruption, _ = _events_by_kind(recorder)
        assert len(corruption) == simulator.network.stats.corruptions > 0
        by_kind = {"substitution": 0, "deletion": 0, "insertion": 0}
        for event in corruption:
            by_kind[event["corruption"]] += 1
        stats = simulator.network.stats
        assert by_kind == {
            "substitution": stats.substitutions,
            "deletion": stats.deletions,
            "insertion": stats.insertions,
        }
