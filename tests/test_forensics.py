"""Tests for the flight recorder and failure forensics.

The guarantees pinned here:

1. the :class:`FlightRecorder` ring is bounded (oldest events fall off,
   ``events_dropped`` counts them), dumps keep the full timeline only for
   failing trials, and ``drain``/``adopt`` behave like the tracer's;
2. ``classify_failure`` is **total** over failing trials — every dump lands
   in one of the four taxonomy causes, never "unknown" — and each cause is
   reachable;
3. the recorded Φ trajectory matches a hand-computed reference on a small
   scripted trial (and the engine's own ``PotentialTrace`` on a noisy one);
4. a seeded noise sweep with failures yields a concrete taxonomy cause for
   every failed trial, round-trips through the :class:`RunStore`, and
   renders via ``repro runs explain`` / ``repro runs flight``;
5. a 2-worker distributed run produces the same forensic dumps as a serial
   run of the same specs (the acceptance criterion: dumps are JSON-pure and
   sorted by seed, so the backend is invisible).
"""

from __future__ import annotations

import json

import pytest

from repro.adversary.base import NoiselessAdversary
from repro.analysis.forensics import (
    TAXONOMY,
    anatomy_rows,
    classify_failure,
    corruption_heatmap,
    explain_dump,
    failed_dumps,
    phi_trajectory,
    render_event,
    render_heatmap,
    render_trajectory,
    rewind_depth_trajectory,
)
from repro.core.engine import InteractiveCodingSimulator
from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload
from repro.network.topologies import line_topology
from repro.obs import FlightRecorder, use_obs
from repro.obs.recorder import classify_slot, link_label
from repro.protocols.random_protocol import RandomProtocol
from repro.runtime import (
    DistributedBackend,
    ProcessPoolBackend,
    RunStore,
    SerialBackend,
    WorkerServer,
    use_runtime,
)


def _failing_cell():
    """A cell empirically known to fail some trials under these seeds
    (noise above algorithm_a's tolerance on a 4-node line)."""
    workload = gossip_workload(topology="line", num_nodes=4, phases=6)
    factory = RandomNoiseFactory(fraction=0.05, insertion_fraction=0.0125)
    return workload, algorithm_a(), factory


def _run_with_recorder(backend=None, store=None, trials=8, capacity=4096):
    workload, scheme, factory = _failing_cell()
    recorder = FlightRecorder(capacity=capacity)
    with use_obs(recorder=recorder):
        trial_set = run_trials(
            workload, scheme, adversary_factory=factory, trials=trials, base_seed=3,
            backend=backend or SerialBackend(), cache=None, store=store,
        )
    return trial_set


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3)
        recorder.begin_trial(seed=1)
        for index in range(5):
            recorder.emit("rewind", iteration=index)
        assert recorder.events_total == 5
        assert recorder.events_dropped == 2
        dump = recorder.finish_trial(success=False)
        assert dump["events_recorded"] == 5
        assert dump["events_kept"] == 3
        # the *oldest* events fell off
        assert [event["iteration"] for event in dump["events"]] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_classify_slot_covers_all_transitions(self):
        assert classify_slot(1, 1) is None
        assert classify_slot(None, None) is None
        assert classify_slot(None, 1) == "insertion"
        assert classify_slot(1, None) == "deletion"
        assert classify_slot(1, 0) == "substitution"

    def test_record_window_emits_only_changed_slots(self):
        recorder = FlightRecorder()
        recorder.begin_trial(seed=0)
        recorder.record_window(
            link=link_label(0, 1), phase="simulation", iteration=2, base_round=10,
            sent=[1, 0, None, 1], delivered=[1, 1, 1, None],
        )
        dump = recorder.finish_trial(success=False)
        events = dump["events"]
        assert [event["round"] for event in events] == [11, 12, 13]
        assert [event["corruption"] for event in events] == [
            "substitution", "insertion", "deletion",
        ]
        assert all(event["link"] == "0->1" for event in events)

    def test_successful_trials_keep_only_the_count_summary(self):
        recorder = FlightRecorder()
        recorder.begin_trial(seed=7)
        recorder.emit("meeting_point", iteration=0)
        ok = recorder.finish_trial(success=True)
        assert ok["events"] == []
        assert ok["event_counts"] == {"meeting_point": 1}
        recorder.begin_trial(seed=8)
        recorder.emit("meeting_point", iteration=0)
        failed = recorder.finish_trial(success=False)
        assert len(failed["events"]) == 1

    def test_drain_is_destructive_and_adopt_merges(self):
        recorder = FlightRecorder()
        recorder.begin_trial(seed=1)
        recorder.finish_trial(success=True)
        remote = FlightRecorder()
        remote.begin_trial(seed=2)
        remote.finish_trial(success=True)
        assert recorder.adopt(remote.drain()) == 1
        dumps = recorder.drain()
        assert [dump["trial"]["seed"] for dump in dumps] == [1, 2]
        assert recorder.drain() == []

    def test_adopt_skips_non_dict_garbage(self):
        recorder = FlightRecorder()
        assert recorder.adopt([None, "junk", {"trial": {"seed": 5}}]) == 1

    def test_dumps_are_json_pure(self):
        recorder = FlightRecorder()
        recorder.begin_trial(seed=3, scheme="algorithm_a")
        recorder.record_window(
            link=link_label(0, 1), phase="simulation", iteration=0, base_round=0,
            sent=[1], delivered=[0],
        )
        dump = recorder.finish_trial(success=False, noise_fraction=0.1)
        assert json.loads(json.dumps(dump)) == dump


class TestClassifyFailure:
    def _dump(self, counts=None, **trial):
        trial.setdefault("success", False)
        return {"trial": trial, "event_counts": counts or {}, "events": []}

    def test_hash_collision_is_conclusive(self):
        dump = self._dump(
            counts={"hash_collision": 1},
            iterations_run=10, iterations_budget=10, noise_fraction=0.5, tolerance=0.01,
        )
        assert classify_failure(dump) == "hash-collision"

    def test_exhausted_over_tolerance_is_noise_budget(self):
        dump = self._dump(
            iterations_run=10, iterations_budget=10, noise_fraction=0.05, tolerance=0.01
        )
        assert classify_failure(dump) == "noise-budget-exhaustion"

    def test_exhausted_within_tolerance_is_rewind_exhaustion(self):
        dump = self._dump(
            iterations_run=10, iterations_budget=10, noise_fraction=0.005, tolerance=0.01
        )
        assert classify_failure(dump) == "rewind-exhaustion"

    def test_unexhausted_failure_is_decode_failure(self):
        dump = self._dump(
            iterations_run=4, iterations_budget=10, noise_fraction=0.5, tolerance=0.01
        )
        assert classify_failure(dump) == "decode-failure"

    def test_taxonomy_is_total_even_on_empty_dumps(self):
        # No events, no budget fields: classification still lands in the
        # taxonomy (never "unknown").
        assert classify_failure({"trial": {"success": False}}) in TAXONOMY
        assert classify_failure({}) in TAXONOMY


class TestForensicsAnalysis:
    def _failing_dump(self, seed, events, **trial):
        counts = {}
        for event in events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        trial.setdefault("success", False)
        trial["seed"] = seed
        return {
            "trial": trial,
            "event_counts": counts,
            "events_recorded": len(events),
            "events_kept": len(events),
            "events": events,
        }

    def test_heatmap_buckets_rounds_per_link(self):
        dump = self._failing_dump(1, [
            {"kind": "corruption", "link": "0->1", "round": 3},
            {"kind": "corruption", "link": "0->1", "round": 66},
            {"kind": "corruption", "link": "1->0", "round": 64},
            {"kind": "rewind", "iteration": 0},  # non-corruption: ignored
        ])
        assert corruption_heatmap([dump], round_bucket=64) == {
            "0->1": {0: 1, 64: 1},
            "1->0": {64: 1},
        }
        with pytest.raises(ValueError):
            corruption_heatmap([dump], round_bucket=0)

    def test_trajectories_sort_by_iteration(self):
        dump = self._failing_dump(1, [
            {"kind": "potential", "iteration": 2, "phi": 4.0},
            {"kind": "potential", "iteration": 0, "phi": 2.0},
            {"kind": "rewind", "iteration": 1},
            {"kind": "rewind", "iteration": 1},
            {"kind": "rewind", "iteration": 0},
        ])
        assert [event["phi"] for event in phi_trajectory(dump)] == [2.0, 4.0]
        assert rewind_depth_trajectory(dump) == [(0, 1), (1, 2)]

    def test_anatomy_rows_group_by_cause(self):
        dumps = [
            self._failing_dump(
                seed, [], iterations_run=10, iterations_budget=10,
                noise_fraction=0.05, tolerance=0.01, corruptions=20,
            )
            for seed in range(3)
        ] + [
            self._failing_dump(
                99, [{"kind": "hash_collision", "iteration": 1}],
                corruptions=1,
            ),
            {"trial": {"seed": 100, "success": True}, "event_counts": {}, "events": []},
        ]
        rows = {row["cause"]: row for row in anatomy_rows(dumps)}
        assert set(rows) == {"noise-budget-exhaustion", "hash-collision"}
        noise_row = rows["noise-budget-exhaustion"]
        assert noise_row["trials"] == 3
        assert noise_row["share"] == pytest.approx(0.75)
        assert noise_row["mean_corruptions"] == pytest.approx(20.0)
        assert noise_row["seeds"] == "0,1,2"

    def test_explain_dump_summarises_one_trial(self):
        dump = self._failing_dump(3, [
            {"kind": "potential", "iteration": 0, "phi": 2.0},
            {"kind": "rewind", "iteration": 0},
        ], iterations_run=10, iterations_budget=10, noise_fraction=0.05, tolerance=0.01)
        summary = explain_dump(dump)
        assert summary["cause"] == "noise-budget-exhaustion"
        assert summary["phi"] == [{"iteration": 0, "phi": 2.0}]
        assert summary["rewind_depth"] == [{"iteration": 0, "rewinds": 1}]
        assert explain_dump({"trial": {"success": True}})["cause"] is None

    def test_render_heatmap_rebuckets_to_fit(self):
        heatmap = {"0->1": {round_index: 1 for round_index in range(0, 640, 10)}}
        text = render_heatmap(heatmap, max_columns=8)
        header = text.splitlines()[0]
        assert header.count("r") <= 8
        assert "-" in header  # coarse buckets render as ranges
        assert render_heatmap({}) == "(no corruption events recorded)"

    def test_render_trajectory_and_event(self):
        text = render_trajectory([(0, 1.0), (1, -2.0)], "potential", width=4)
        assert "iter   0" in text and "####" in text
        line = render_event(
            {"kind": "corruption", "sent": 1, "round": 5, "link": "0->1", "corruption": "deletion"}
        )
        # anchor fields lead, the rest is sorted
        assert line == "[corruption] round=5 link=0->1 corruption=deletion sent=1"


class TestPhiTrajectory:
    """Satellite: the recorded Φ trajectory against hand-computed references."""

    def test_noiseless_trajectory_matches_hand_computed_reference(self):
        """On a noiseless line, every iteration commits one chunk per link in
        perfect agreement, so after iteration ``i`` (0-based):
        ``G* = H* = i + 1``, ``B* = 0`` and ``Φ = (k/m)·Σ G_uv − c1·k·B* =
        (k/m)·(m·(i+1)) = k·(i+1)``."""
        graph = line_topology(3)
        protocol = RandomProtocol(
            graph, {party: party + 1 for party in graph.nodes},
            num_rounds=24, density=0.5, seed=1,
        )
        recorder = FlightRecorder()
        with use_obs(recorder=recorder):
            simulator = InteractiveCodingSimulator(
                protocol, scheme=algorithm_a(), adversary=NoiselessAdversary(), seed=0
            )
            result = simulator.run()
        assert result.success
        events = [event for event in recorder._events if event["kind"] == "potential"]
        assert len(events) == result.iterations_run >= 3
        scale_k = simulator.scale_k
        for index, event in enumerate(events):
            assert event["iteration"] == index
            assert event["G_star"] == index + 1
            assert event["H_star"] == index + 1
            assert event["B_star"] == 0
            assert event["phi"] == pytest.approx(scale_k * (index + 1))

    def test_noisy_trajectory_matches_the_engines_own_potential_trace(self):
        """Under noise the trajectory is not hand-computable, but the engine
        can compute it twice: the recorder's ``potential`` events must equal
        the scheme-level ``PotentialTrace`` snapshot for snapshot."""
        import dataclasses

        graph = line_topology(4)
        protocol = RandomProtocol(
            graph, {party: party + 1 for party in graph.nodes},
            num_rounds=24, density=0.5, seed=2,
        )
        scheme = dataclasses.replace(algorithm_a(), trace_potential=True)
        adversary = RandomNoiseFactory(fraction=0.02)(5)
        recorder = FlightRecorder()
        with use_obs(recorder=recorder):
            simulator = InteractiveCodingSimulator(
                protocol, scheme=scheme, adversary=adversary, seed=5
            )
            result = simulator.run()
        events = [event for event in recorder._events if event["kind"] == "potential"]
        reference = [
            dict(snapshot.as_dict(), kind="potential")
            for snapshot in result.potential_trace.snapshots
        ]
        assert events == reference


class TestForensicsEndToEnd:
    def test_every_failed_trial_gets_a_concrete_cause(self):
        trial_set = _run_with_recorder()
        dumps = trial_set.forensics
        assert dumps is not None and len(dumps) == 8
        # dumps are sorted by seed and cover every executed trial
        seeds = [dump["trial"]["seed"] for dump in dumps]
        assert seeds == sorted(seeds)
        assert {dump["trial"]["success"] for dump in dumps} == {True, False}
        failures = failed_dumps(dumps)
        assert failures  # the cell is chosen to fail some trials
        causes = [classify_failure(dump) for dump in failures]
        # the acceptance bar is >=95% concrete; the taxonomy is total, so
        # every single one gets a named cause
        assert all(cause in TAXONOMY for cause in causes)
        for dump in failures:
            assert dump["events"], "failing trials must keep their timeline"
        for dump in dumps:
            if dump["trial"]["success"]:
                assert dump["events"] == []

    def test_forensics_round_trip_through_the_store(self, tmp_path):
        store = RunStore(tmp_path)
        trial_set = _run_with_recorder(store=store)
        (row,) = store.query(kind="trial_set")
        payload = store.load(row["run_id"])
        assert payload["forensics"] == trial_set.forensics

    def test_runs_explain_renders_anatomy_and_heatmap(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        _run_with_recorder(store=store)
        assert main(["runs", "explain", "latest", "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "failure anatomy" in out
        assert "corruption heatmap" in out
        assert "Φ trajectory" in out
        assert any(cause in out for cause in TAXONOMY)

    def test_runs_explain_json_contract(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        trial_set = _run_with_recorder(store=store)
        assert main([
            "runs", "explain", "latest", "--store-dir", str(tmp_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials"] == 8
        assert payload["failed"] == len(failed_dumps(trial_set.forensics))
        assert payload["failed"] > 0
        assert {row["cause"] for row in payload["anatomy"]} <= set(TAXONOMY)
        assert len(payload["verdicts"]) == payload["failed"]
        for verdict in payload["verdicts"]:
            assert verdict["cause"] in TAXONOMY

    def test_runs_flight_renders_one_trial_timeline(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        trial_set = _run_with_recorder(store=store)
        failed_seed = failed_dumps(trial_set.forensics)[0]["trial"]["seed"]
        assert main([
            "runs", "flight", "latest", str(failed_seed), "--store-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "FAILED" in out and "cause:" in out
        assert "[corruption]" in out and "[potential]" in out

    def test_runs_flight_unknown_seed_lists_recorded_ones(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        _run_with_recorder(store=store)
        with pytest.raises(SystemExit):
            main(["runs", "flight", "latest", "424242", "--store-dir", str(tmp_path)])
        assert "recorded seeds" in capsys.readouterr().err

    def test_runs_explain_without_forensics_fails_friendly(self, tmp_path, capsys):
        from repro.cli import main

        workload, scheme, factory = _failing_cell()
        store = RunStore(tmp_path)
        run_trials(
            workload, scheme, adversary_factory=factory, trials=1, base_seed=3,
            backend=SerialBackend(), cache=None, store=store,
        )
        with pytest.raises(SystemExit):
            main(["runs", "explain", "latest", "--store-dir", str(tmp_path)])
        assert "--forensics" in capsys.readouterr().err


class TestBackendForensicsParity:
    def test_process_pool_run_matches_serial_forensics(self):
        """Pool workers never inherit the ambient obs context; the backend
        must ship chunk-local recorder dumps home so ``--forensics --jobs N``
        records exactly what a serial run would."""
        serial = _run_with_recorder()
        with ProcessPoolBackend(max_workers=2, chunk_size=2) as backend:
            pooled = _run_with_recorder(backend=backend)
        assert pooled.forensics == serial.forensics
        assert [run.to_payload() for run in pooled.runs] == [
            run.to_payload() for run in serial.runs
        ]


class TestDistributedForensics:
    def test_two_worker_run_matches_serial_forensics(self):
        """The acceptance criterion: a 2-worker distributed run of the same
        specs yields byte-identical forensic dumps to the serial run."""
        serial = _run_with_recorder()
        workers = [WorkerServer().start(), WorkerServer().start()]
        try:
            backend = DistributedBackend(
                workers=[server.address for server in workers],
                chunk_size=1,  # spread chunks across both workers
                probe_cache=False,
            )
            with use_runtime(backend=backend, cache=None, store=None):
                distributed = _run_with_recorder(backend=backend)
            backend.close()
        finally:
            for server in workers:
                server.stop()
        assert distributed.forensics == serial.forensics
        assert [run.to_payload() for run in distributed.runs] == [
            run.to_payload() for run in serial.runs
        ]
