"""Integration tests: the simulator over a noiseless network.

Over a perfect network the coding scheme must reproduce the noiseless outputs
of every workload exactly, with bounded overhead, and its early-stop must fire
well before the iteration budget.
"""

from __future__ import annotations

import pytest

from repro.core.engine import simulate
from repro.core.parameters import algorithm_a, algorithm_b, algorithm_c, crs_oblivious_scheme
from repro.network.topologies import ring_topology, star_topology
from repro.protocols.random_protocol import RandomProtocol
from repro.protocols.token_ring import TokenRingProtocol


class TestNoiselessCorrectness:
    def test_gossip_line(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        assert result.success
        assert result.failed_parties() == []

    def test_gossip_clique(self, gossip_clique4):
        result = simulate(gossip_clique4, scheme=crs_oblivious_scheme(), seed=2)
        assert result.success

    def test_aggregation(self, aggregation_line6):
        result = simulate(aggregation_line6, scheme=crs_oblivious_scheme(), seed=3)
        assert result.success
        assert all(value == aggregation_line6.expected_total() for value in result.outputs.values())

    def test_line_example(self, line_example6):
        result = simulate(line_example6, scheme=crs_oblivious_scheme(), seed=4)
        assert result.success

    def test_token_ring(self):
        graph = ring_topology(5)
        protocol = TokenRingProtocol(graph, {i: i for i in range(5)}, value_bits=4, laps=1)
        result = simulate(protocol, scheme=crs_oblivious_scheme(), seed=5)
        assert result.success

    def test_random_protocol(self):
        graph = star_topology(5)
        protocol = RandomProtocol(graph, {i: i * 3 for i in range(5)}, num_rounds=10, density=0.5, seed=6)
        result = simulate(protocol, scheme=crs_oblivious_scheme(), seed=6)
        assert result.success

    def test_pairwise_exchange(self, pairwise_line4):
        result = simulate(pairwise_line4, scheme=crs_oblivious_scheme(), seed=7)
        assert result.success

    @pytest.mark.parametrize("scheme_factory", [crs_oblivious_scheme, algorithm_a, algorithm_b, algorithm_c])
    def test_all_schemes_noiseless(self, scheme_factory, gossip_line5):
        result = simulate(gossip_line5, scheme=scheme_factory(), seed=8)
        assert result.success


class TestNoiselessBehaviour:
    def test_early_stop_fires(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        assert result.iterations_run < result.iterations_budget

    def test_without_early_stop_all_iterations_run(self, pairwise_line4):
        scheme = crs_oblivious_scheme(early_stop=False, min_iterations=5, iteration_factor=1.0, extra_iterations=0)
        result = simulate(pairwise_line4, scheme=scheme, seed=1)
        assert result.iterations_run == result.iterations_budget

    def test_overhead_is_finite_and_recorded(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        assert result.overhead > 1.0
        assert result.metrics.simulation_communication == sum(
            result.metrics.communication_by_phase.values()
        )

    def test_no_noise_means_no_corruptions(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        assert result.metrics.corruptions == 0
        assert result.noise_fraction == 0.0
        assert result.metrics.hash_collisions_observed == 0

    def test_final_link_agreement_covers_all_chunks(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        assert all(value >= result.num_real_chunks for value in result.final_link_agreement.values())

    def test_deterministic_given_seed(self, gossip_line5):
        first = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=12)
        second = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=12)
        assert first.metrics.simulation_communication == second.metrics.simulation_communication
        assert first.outputs == second.outputs

    def test_trace_potential_records_snapshots(self, gossip_line5):
        scheme = crs_oblivious_scheme(trace_potential=True)
        result = simulate(gossip_line5, scheme=scheme, seed=1)
        assert result.potential_trace is not None
        assert len(result.potential_trace) == result.iterations_run
        assert result.potential_trace.is_monotone_nondecreasing("G_star")

    def test_crs_mode_has_no_randomness_exchange_traffic(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        assert "randomness_exchange" not in result.metrics.communication_by_phase

    def test_exchange_mode_pays_randomness_exchange_traffic(self, gossip_line5):
        result = simulate(gossip_line5, scheme=algorithm_a(), seed=1)
        assert result.metrics.communication_by_phase.get("randomness_exchange", 0) > 0
        assert result.metrics.randomness_exchange_failures == 0

    def test_summary_contains_key_fields(self, gossip_line5):
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=1)
        summary = result.summary()
        for key in ("scheme", "success", "cc_protocol", "cc_simulation", "overhead", "rate"):
            assert key in summary


class TestAblationsNoiseless:
    def test_flag_passing_disabled_still_correct_without_noise(self, gossip_line5):
        scheme = crs_oblivious_scheme(enable_flag_passing=False)
        assert simulate(gossip_line5, scheme=scheme, seed=1).success

    def test_rewind_disabled_still_correct_without_noise(self, gossip_line5):
        scheme = crs_oblivious_scheme(enable_rewind_phase=False)
        assert simulate(gossip_line5, scheme=scheme, seed=1).success

    def test_raw_hash_input_mode(self, pairwise_line4):
        scheme = crs_oblivious_scheme(hash_input_mode="raw")
        assert simulate(pairwise_line4, scheme=scheme, seed=1).success

    def test_custom_chunk_multiplier(self, gossip_line5):
        big_chunks = simulate(gossip_line5, scheme=crs_oblivious_scheme(chunk_multiplier=20), seed=1)
        small_chunks = simulate(gossip_line5, scheme=crs_oblivious_scheme(chunk_multiplier=2), seed=1)
        assert big_chunks.success and small_chunks.success
        assert big_chunks.overhead < small_chunks.overhead
