"""Unit tests for the adversary implementations."""

from __future__ import annotations

import pytest

from repro.adversary.base import NoiseBudget, NoiselessAdversary
from repro.adversary.oblivious import AdditiveObliviousAdversary, FixingObliviousAdversary
from repro.adversary.strategies import (
    BurstAdversary,
    CompositeAdversary,
    DeletionAdversary,
    EchoSpoofingAdversary,
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
    RotatingLinkAdaptiveAdversary,
)
from repro.network.channel import TransmissionContext


def _ctx(round_index=0, sender=0, receiver=1, phase="simulation", iteration=0):
    return TransmissionContext(
        round_index=round_index, sender=sender, receiver=receiver, phase=phase, iteration=iteration
    )


class TestNoiseBudget:
    def test_allowance_grows_with_transmissions(self):
        budget = NoiseBudget(fraction=0.1)
        assert not budget.can_spend()
        for _ in range(10):
            budget.observe_transmission()
        assert budget.allowed == 1
        budget.spend()
        assert not budget.can_spend()
        assert budget.remaining == 0

    def test_absolute_allowance(self):
        budget = NoiseBudget(fraction=0.0, absolute_allowance=2)
        budget.spend()
        budget.spend()
        with pytest.raises(RuntimeError):
            budget.spend()


class TestNoiseless:
    def test_identity(self):
        adversary = NoiselessAdversary()
        assert adversary.corrupt(_ctx(), 1) == 1
        assert adversary.corrupt(_ctx(), None) is None
        assert adversary.may_insert is False


class TestAdditiveOblivious:
    def test_pattern_applies_only_on_listed_slots(self):
        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1})
        assert adversary.corrupt(_ctx(round_index=0), 0) == 1
        assert adversary.corrupt(_ctx(round_index=1), 0) == 0

    def test_pattern_can_delete_and_insert(self):
        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1, (1, 0, 1): 2})
        assert adversary.corrupt(_ctx(round_index=1), 0) is None  # 0 + 2 = 2 -> silence
        assert adversary.corrupt(_ctx(round_index=0), None) == 0  # silence + 1 -> 0

    def test_rejects_zero_offset(self):
        with pytest.raises(ValueError):
            AdditiveObliviousAdversary(pattern={(0, 0, 1): 0})

    def test_planned_corruptions(self):
        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1, (3, 1, 0): 2})
        assert adversary.planned_corruptions() == 2


class TestFixingOblivious:
    def test_fixes_output(self):
        adversary = FixingObliviousAdversary(pattern={(0, 0, 1): 1, (1, 0, 1): None})
        assert adversary.corrupt(_ctx(round_index=0), 0) == 1
        assert adversary.corrupt(_ctx(round_index=1), 1) is None
        assert adversary.corrupt(_ctx(round_index=2), 0) == 0

    def test_fixing_to_honest_value_is_not_a_corruption(self):
        adversary = FixingObliviousAdversary(pattern={(0, 0, 1): 1})
        assert adversary.corrupt(_ctx(round_index=0), 1) == 1


class TestRandomNoise:
    def test_zero_probability_never_corrupts(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.0, seed=1)
        assert all(adversary.corrupt(_ctx(round_index=i), 1) == 1 for i in range(50))

    def test_full_probability_always_corrupts(self):
        adversary = RandomNoiseAdversary(corruption_probability=1.0, seed=1)
        assert all(adversary.corrupt(_ctx(round_index=i), 1) != 1 for i in range(50))

    def test_budget_capped(self):
        budget = NoiseBudget(fraction=0.0, absolute_allowance=2)
        adversary = RandomNoiseAdversary(corruption_probability=1.0, seed=1, budget=budget)
        corrupted = sum(1 for i in range(20) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert corrupted == 2

    def test_reset_restores_stream(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.5, seed=3)
        first = [adversary.corrupt(_ctx(round_index=i), 1) for i in range(20)]
        adversary.reset()
        second = [adversary.corrupt(_ctx(round_index=i), 1) for i in range(20)]
        assert first == second

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RandomNoiseAdversary(corruption_probability=1.5)


class TestLinkTargeted:
    def test_only_target_link_is_hit(self):
        adversary = LinkTargetedAdversary(target=(0, 1), max_corruptions=100, seed=0)
        assert adversary.corrupt(_ctx(sender=1, receiver=0), 1) == 1
        assert adversary.corrupt(_ctx(sender=0, receiver=1), 1) != 1

    def test_phase_restriction(self):
        adversary = LinkTargetedAdversary(target=(0, 1), phases=("simulation",), max_corruptions=10, seed=0)
        assert adversary.corrupt(_ctx(phase="meeting_points"), 1) == 1
        assert adversary.corrupt(_ctx(phase="simulation"), 1) != 1

    def test_max_corruptions_cap_survives_reset(self):
        adversary = LinkTargetedAdversary(target=(0, 1), max_corruptions=1, seed=0)
        adversary.reset()
        hits = sum(1 for i in range(10) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert hits == 1

    def test_fraction_budget(self):
        adversary = LinkTargetedAdversary(target=(0, 1), fraction=0.5, seed=0)
        hits = sum(1 for i in range(20) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert 8 <= hits <= 10  # roughly half of the observed transmissions


class TestBurst:
    def test_burst_window(self):
        adversary = BurstAdversary(start_round=5, end_round=7, max_corruptions=10, seed=0)
        assert adversary.corrupt(_ctx(round_index=4), 1) == 1
        assert adversary.corrupt(_ctx(round_index=5), 1) != 1
        assert adversary.corrupt(_ctx(round_index=8), 1) == 1

    def test_burst_cap(self):
        adversary = BurstAdversary(start_round=0, end_round=100, max_corruptions=2, seed=0)
        hits = sum(1 for i in range(50) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert hits == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BurstAdversary(start_round=5, end_round=1)


class TestDeletion:
    def test_only_deletes(self):
        adversary = DeletionAdversary(deletion_probability=1.0, seed=0)
        assert adversary.corrupt(_ctx(), 1) is None
        assert adversary.corrupt(_ctx(), None) is None


class TestAdaptive:
    def test_phase_targeted_respects_budget(self):
        adversary = PhaseTargetedAdaptiveAdversary(fraction=0.1, phases=("simulation",), seed=0)
        hits = 0
        for i in range(100):
            if adversary.corrupt(_ctx(round_index=i, phase="simulation"), 1) != 1:
                hits += 1
        assert 8 <= hits <= 11
        assert adversary.oblivious is False

    def test_rotating_link_requires_links(self):
        with pytest.raises(ValueError):
            RotatingLinkAdaptiveAdversary(links=(), fraction=0.1)

    def test_rotating_link_moves_across_links(self):
        adversary = RotatingLinkAdaptiveAdversary(links=((0, 1), (1, 0)), fraction=1.0, seed=0)
        corrupted_links = set()
        for i in range(40):
            sender, receiver = (0, 1) if i % 2 == 0 else (1, 0)
            result = adversary.corrupt(_ctx(round_index=i, sender=sender, receiver=receiver), 1)
            if result != 1:
                corrupted_links.add((sender, receiver))
        assert corrupted_links == {(0, 1), (1, 0)}

    def test_echo_spoofing_spends_in_pairs(self):
        adversary = EchoSpoofingAdversary(target=(0, 1), fraction=0.5, seed=0)
        # Build up budget by letting it observe unrelated traffic first.
        for i in range(10):
            assert adversary.corrupt(_ctx(round_index=i, sender=2, receiver=3), 1) == 1
        deleted = adversary.corrupt(_ctx(sender=0, receiver=1), 1)
        assert deleted is None
        spoofed = adversary.corrupt(_ctx(sender=1, receiver=0), None)
        assert spoofed in (0, 1)


class TestComposite:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompositeAdversary(components=())

    def test_applies_all_components(self):
        composite = CompositeAdversary(
            components=(
                DeletionAdversary(deletion_probability=0.0, seed=0),
                LinkTargetedAdversary(target=(0, 1), max_corruptions=100, seed=0),
            )
        )
        assert composite.corrupt(_ctx(sender=0, receiver=1), 1) != 1
        assert composite.oblivious is True

    def test_obliviousness_propagates(self):
        composite = CompositeAdversary(
            components=(
                PhaseTargetedAdaptiveAdversary(fraction=0.1, seed=0),
                NoiselessAdversary(),
            )
        )
        assert composite.oblivious is False
