"""Unit tests for the adversary implementations."""

from __future__ import annotations

import pytest

from repro.adversary import ContractViolation, check_contract
from repro.adversary.base import Adversary, NoiseBudget, NoiselessAdversary
from repro.adversary.oblivious import AdditiveObliviousAdversary, FixingObliviousAdversary
from repro.adversary.strategies import (
    BurstAdversary,
    CompositeAdversary,
    DeletionAdversary,
    EchoSpoofingAdversary,
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
    RotatingLinkAdaptiveAdversary,
)
from repro.network.channel import Symbol, TransmissionContext, WindowContext


def _ctx(round_index=0, sender=0, receiver=1, phase="simulation", iteration=0):
    return TransmissionContext(
        round_index=round_index, sender=sender, receiver=receiver, phase=phase, iteration=iteration
    )


def _window_ctx(link=(0, 1), phase="simulation", iteration=0, base_round=0):
    return WindowContext(link=link, phase=phase, iteration=iteration, base_round=base_round)


class TestNoiseBudget:
    def test_allowance_grows_with_transmissions(self):
        budget = NoiseBudget(fraction=0.1)
        assert not budget.can_spend()
        for _ in range(10):
            budget.observe_transmission()
        assert budget.allowed == 1
        budget.spend()
        assert not budget.can_spend()
        assert budget.remaining == 0

    def test_absolute_allowance(self):
        budget = NoiseBudget(fraction=0.0, absolute_allowance=2)
        budget.spend()
        budget.spend()
        with pytest.raises(RuntimeError):
            budget.spend()

    def test_bulk_observe_matches_repeated_single_observes(self):
        bulk = NoiseBudget(fraction=0.1)
        single = NoiseBudget(fraction=0.1)
        bulk.observe_transmissions(37)
        for _ in range(37):
            single.observe_transmission()
        assert bulk == single
        assert bulk.allowed == single.allowed

    def test_bulk_observe_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            NoiseBudget(fraction=0.1).observe_transmissions(-1)

    def test_bulk_spend(self):
        budget = NoiseBudget(fraction=0.0, absolute_allowance=5)
        budget.spend(3)
        assert budget.remaining == 2
        with pytest.raises(RuntimeError):
            budget.spend(3)


class TestNoiseless:
    def test_identity(self):
        adversary = NoiselessAdversary()
        assert adversary.corrupt(_ctx(), 1) == 1
        assert adversary.corrupt(_ctx(), None) is None
        assert adversary.may_insert is False


class TestAdditiveOblivious:
    def test_pattern_applies_only_on_listed_slots(self):
        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1})
        assert adversary.corrupt(_ctx(round_index=0), 0) == 1
        assert adversary.corrupt(_ctx(round_index=1), 0) == 0

    def test_pattern_can_delete_and_insert(self):
        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1, (1, 0, 1): 2})
        assert adversary.corrupt(_ctx(round_index=1), 0) is None  # 0 + 2 = 2 -> silence
        assert adversary.corrupt(_ctx(round_index=0), None) == 0  # silence + 1 -> 0

    def test_rejects_zero_offset(self):
        with pytest.raises(ValueError):
            AdditiveObliviousAdversary(pattern={(0, 0, 1): 0})

    def test_planned_corruptions(self):
        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1, (3, 1, 0): 2})
        assert adversary.planned_corruptions() == 2


class TestFixingOblivious:
    def test_fixes_output(self):
        adversary = FixingObliviousAdversary(pattern={(0, 0, 1): 1, (1, 0, 1): None})
        assert adversary.corrupt(_ctx(round_index=0), 0) == 1
        assert adversary.corrupt(_ctx(round_index=1), 1) is None
        assert adversary.corrupt(_ctx(round_index=2), 0) == 0

    def test_fixing_to_honest_value_is_not_a_corruption(self):
        adversary = FixingObliviousAdversary(pattern={(0, 0, 1): 1})
        assert adversary.corrupt(_ctx(round_index=0), 1) == 1


class TestRandomNoise:
    def test_zero_probability_never_corrupts(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.0, seed=1)
        assert all(adversary.corrupt(_ctx(round_index=i), 1) == 1 for i in range(50))

    def test_full_probability_always_corrupts(self):
        adversary = RandomNoiseAdversary(corruption_probability=1.0, seed=1)
        assert all(adversary.corrupt(_ctx(round_index=i), 1) != 1 for i in range(50))

    def test_budget_capped(self):
        budget = NoiseBudget(fraction=0.0, absolute_allowance=2)
        adversary = RandomNoiseAdversary(corruption_probability=1.0, seed=1, budget=budget)
        corrupted = sum(1 for i in range(20) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert corrupted == 2

    def test_reset_restores_stream(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.5, seed=3)
        first = [adversary.corrupt(_ctx(round_index=i), 1) for i in range(20)]
        adversary.reset()
        second = [adversary.corrupt(_ctx(round_index=i), 1) for i in range(20)]
        assert first == second

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RandomNoiseAdversary(corruption_probability=1.5)


class TestLinkTargeted:
    def test_only_target_link_is_hit(self):
        adversary = LinkTargetedAdversary(target=(0, 1), max_corruptions=100, seed=0)
        assert adversary.corrupt(_ctx(sender=1, receiver=0), 1) == 1
        assert adversary.corrupt(_ctx(sender=0, receiver=1), 1) != 1

    def test_phase_restriction(self):
        adversary = LinkTargetedAdversary(target=(0, 1), phases=("simulation",), max_corruptions=10, seed=0)
        assert adversary.corrupt(_ctx(phase="meeting_points"), 1) == 1
        assert adversary.corrupt(_ctx(phase="simulation"), 1) != 1

    def test_max_corruptions_cap_survives_reset(self):
        adversary = LinkTargetedAdversary(target=(0, 1), max_corruptions=1, seed=0)
        adversary.reset()
        hits = sum(1 for i in range(10) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert hits == 1

    def test_fraction_budget(self):
        adversary = LinkTargetedAdversary(target=(0, 1), fraction=0.5, seed=0)
        hits = sum(1 for i in range(20) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert 8 <= hits <= 10  # roughly half of the observed transmissions


class TestBurst:
    def test_burst_window(self):
        adversary = BurstAdversary(start_round=5, end_round=7, max_corruptions=10, seed=0)
        assert adversary.corrupt(_ctx(round_index=4), 1) == 1
        assert adversary.corrupt(_ctx(round_index=5), 1) != 1
        assert adversary.corrupt(_ctx(round_index=8), 1) == 1

    def test_burst_cap(self):
        adversary = BurstAdversary(start_round=0, end_round=100, max_corruptions=2, seed=0)
        hits = sum(1 for i in range(50) if adversary.corrupt(_ctx(round_index=i), 1) != 1)
        assert hits == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BurstAdversary(start_round=5, end_round=1)


class TestDeletion:
    def test_only_deletes(self):
        adversary = DeletionAdversary(deletion_probability=1.0, seed=0)
        assert adversary.corrupt(_ctx(), 1) is None
        assert adversary.corrupt(_ctx(), None) is None


class TestAdaptive:
    def test_phase_targeted_respects_budget(self):
        adversary = PhaseTargetedAdaptiveAdversary(fraction=0.1, phases=("simulation",), seed=0)
        hits = 0
        for i in range(100):
            if adversary.corrupt(_ctx(round_index=i, phase="simulation"), 1) != 1:
                hits += 1
        assert 8 <= hits <= 11
        assert adversary.oblivious is False

    def test_rotating_link_requires_links(self):
        with pytest.raises(ValueError):
            RotatingLinkAdaptiveAdversary(links=(), fraction=0.1)

    def test_rotating_link_moves_across_links(self):
        adversary = RotatingLinkAdaptiveAdversary(links=((0, 1), (1, 0)), fraction=1.0, seed=0)
        corrupted_links = set()
        for i in range(40):
            sender, receiver = (0, 1) if i % 2 == 0 else (1, 0)
            result = adversary.corrupt(_ctx(round_index=i, sender=sender, receiver=receiver), 1)
            if result != 1:
                corrupted_links.add((sender, receiver))
        assert corrupted_links == {(0, 1), (1, 0)}

    def test_echo_spoofing_spends_in_pairs(self):
        adversary = EchoSpoofingAdversary(target=(0, 1), fraction=0.5, seed=0)
        # Build up budget by letting it observe unrelated traffic first.
        for i in range(10):
            assert adversary.corrupt(_ctx(round_index=i, sender=2, receiver=3), 1) == 1
        deleted = adversary.corrupt(_ctx(sender=0, receiver=1), 1)
        assert deleted is None
        spoofed = adversary.corrupt(_ctx(sender=1, receiver=0), None)
        assert spoofed in (0, 1)


class TestComposite:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompositeAdversary(components=())

    def test_applies_all_components(self):
        composite = CompositeAdversary(
            components=(
                DeletionAdversary(deletion_probability=0.0, seed=0),
                LinkTargetedAdversary(target=(0, 1), max_corruptions=100, seed=0),
            )
        )
        assert composite.corrupt(_ctx(sender=0, receiver=1), 1) != 1
        assert composite.oblivious is True

    def test_obliviousness_propagates(self):
        composite = CompositeAdversary(
            components=(
                PhaseTargetedAdaptiveAdversary(fraction=0.1, seed=0),
                NoiselessAdversary(),
            )
        )
        assert composite.oblivious is False

    def test_rejects_shared_noise_budget(self):
        """A budget shared between components would make the batched and
        per-slot paths diverge (the batch overrides mirror counters locally
        per component), so the unsupported configuration fails loudly."""
        shared = NoiseBudget(fraction=0.1)
        with pytest.raises(ValueError, match="share a NoiseBudget"):
            CompositeAdversary(
                components=(
                    RandomNoiseAdversary(corruption_probability=0.5, seed=0, budget=shared),
                    DeletionAdversary(deletion_probability=0.5, seed=1, budget=shared),
                )
            )
        # distinct budgets are fine, including across nesting levels
        CompositeAdversary(
            components=(
                RandomNoiseAdversary(
                    corruption_probability=0.5, seed=0, budget=NoiseBudget(fraction=0.1)
                ),
                CompositeAdversary(
                    components=(
                        DeletionAdversary(
                            deletion_probability=0.5, seed=1, budget=NoiseBudget(fraction=0.1)
                        ),
                    )
                ),
            )
        )


class TestMayInsertContract:
    """`may_insert` is a real, documented attribute of every stock adversary."""

    def test_every_stock_adversary_sets_may_insert(self):
        instances = [
            NoiselessAdversary(),
            AdditiveObliviousAdversary(pattern={(0, 0, 1): 1}),
            AdditiveObliviousAdversary(),
            FixingObliviousAdversary(pattern={(0, 0, 1): 1}),
            FixingObliviousAdversary(pattern={(0, 0, 1): None}),
            RandomNoiseAdversary(corruption_probability=0.1, seed=0),
            RandomNoiseAdversary(corruption_probability=0.1, insertion_probability=0.1, seed=0),
            LinkTargetedAdversary(target=(0, 1), fraction=0.1, seed=0),
            BurstAdversary(start_round=0, end_round=1, max_corruptions=1, seed=0),
            DeletionAdversary(deletion_probability=0.1, seed=0),
            CompositeAdversary(components=(NoiselessAdversary(),)),
            PhaseTargetedAdaptiveAdversary(fraction=0.1, seed=0),
            RotatingLinkAdaptiveAdversary(links=((0, 1),), fraction=0.1, seed=0),
            EchoSpoofingAdversary(target=(0, 1), fraction=0.1, seed=0),
        ]
        for adversary in instances:
            assert isinstance(adversary.may_insert, bool), adversary.name

    def test_may_insert_reflects_insertion_capability(self):
        assert NoiselessAdversary().may_insert is False
        assert AdditiveObliviousAdversary(pattern={(0, 0, 1): 1}).may_insert is True
        assert AdditiveObliviousAdversary().may_insert is False
        assert FixingObliviousAdversary(pattern={(0, 0, 1): None}).may_insert is False
        assert RandomNoiseAdversary(corruption_probability=0.5, seed=0).may_insert is False
        assert (
            RandomNoiseAdversary(
                corruption_probability=0.5, insertion_probability=0.1, seed=0
            ).may_insert
            is True
        )
        assert EchoSpoofingAdversary(target=(0, 1), fraction=0.1, seed=0).may_insert is True
        assert (
            CompositeAdversary(
                components=(
                    NoiselessAdversary(),
                    EchoSpoofingAdversary(target=(0, 1), fraction=0.1, seed=0),
                )
            ).may_insert
            is True
        )


class _NotifyDependentAdversary(Adversary):
    """Corrupts a slot iff the previous notification showed a clean delivery.

    Implements only `corrupt` + `notify_delivery` — the documented per-slot
    pattern — so composites containing it must fall back to slot-by-slot
    replay to stay bit-identical between the transmission paths.
    """

    name = "notify-dependent"
    may_insert = False

    def __init__(self):
        self.last_was_clean = False

    def corrupt(self, ctx, sent):
        if sent is not None and self.last_was_clean:
            return 1 - sent
        return sent

    def notify_delivery(self, ctx, sent, received):
        self.last_was_clean = sent == received

    def reset(self):
        self.last_was_clean = False


def test_composite_with_notify_using_component_stays_bit_identical():
    from repro.network.topologies import line_topology
    from repro.network.transport import NoisyNetwork

    def build():
        return CompositeAdversary(
            components=(
                RandomNoiseAdversary(corruption_probability=0.3, seed=9),
                _NotifyDependentAdversary(),
            )
        )

    batched = NoisyNetwork(line_topology(3), adversary=build())
    per_slot = NoisyNetwork(line_topology(3), adversary=build())
    messages = {(0, 1): [1, 1, 0, 1, 0, 1], (1, 2): [0, 1, 1, None, 1, 0]}
    a = batched.exchange_window(messages, 6, phase="simulation")
    b = per_slot.exchange_window_per_slot(messages, 6, phase="simulation")
    assert a == b
    assert batched.stats == per_slot.stats
    assert (
        batched.adversary.components[1].last_was_clean
        == per_slot.adversary.components[1].last_was_clean
    )


class _PerSlotOnlyAdversary(Adversary):
    """A custom adversary that only implements `corrupt` (fallback coverage)."""

    name = "per-slot-only"
    may_insert = True

    def __init__(self):
        self.calls = []
        self.notified = []

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        self.calls.append((ctx.round_index, ctx.slot_index, sent))
        if sent is None:
            return None
        return 1 - sent

    def notify_delivery(self, ctx, sent, received):
        self.notified.append((ctx.slot_index, sent, received))


class TestCorruptWindow:
    """The batch contract: corrupt_window must mirror per-slot corrupt calls."""

    def _per_slot_reference(self, build, ctx, window):
        """Drive `corrupt` slot by slot the way the per-slot transport would."""
        adversary = build()
        delivered = []
        for offset, sent in enumerate(window):
            if sent is None and not adversary.may_insert:
                delivered.append(None)
                continue
            slot = ctx.slot(offset)
            received = adversary.corrupt(slot, sent)
            adversary.notify_delivery(slot, sent, received)
            delivered.append(received)
        return adversary, delivered

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: NoiselessAdversary(),
            lambda: AdditiveObliviousAdversary(pattern={(2, 0, 1): 1, (4, 0, 1): 2}),
            lambda: FixingObliviousAdversary(pattern={(1, 0, 1): None, (3, 0, 1): 1}),
            lambda: RandomNoiseAdversary(
                corruption_probability=0.4, insertion_probability=0.2, seed=11
            ),
            lambda: RandomNoiseAdversary(
                corruption_probability=0.9,
                seed=5,
                budget=NoiseBudget(fraction=0.3, absolute_allowance=1),
            ),
            lambda: LinkTargetedAdversary(target=(0, 1), fraction=0.5, seed=3),
            lambda: BurstAdversary(start_round=1, end_round=4, max_corruptions=2, seed=9),
            lambda: DeletionAdversary(deletion_probability=0.5, seed=7),
            lambda: DeletionAdversary(
                deletion_probability=0.9, seed=2, budget=NoiseBudget(fraction=0.25)
            ),
            lambda: PhaseTargetedAdaptiveAdversary(
                fraction=0.4, phases=("simulation",), seed=4
            ),
            lambda: RotatingLinkAdaptiveAdversary(links=((0, 1), (1, 0)), fraction=1.0, seed=6),
            lambda: EchoSpoofingAdversary(target=(0, 1), fraction=0.6, seed=8),
        ],
        ids=[
            "noiseless",
            "additive",
            "fixing",
            "random-noise",
            "random-noise-budgeted",
            "link-targeted",
            "burst",
            "deletion",
            "deletion-budgeted",
            "phase-targeted",
            "rotating-link",
            "echo-spoofing",
        ],
    )
    def test_window_matches_slot_by_slot_reference(self, builder):
        window = [1, 0, None, 1, None, 0, 1, 1]
        ctx = _window_ctx(link=(0, 1), phase="simulation", base_round=0)
        reference_adversary, reference = self._per_slot_reference(builder, ctx, window)
        adversary = builder()
        delivered = adversary.corrupt_window(ctx, window)
        assert delivered == reference
        rng = getattr(adversary, "_rng", None)
        if rng is not None:
            assert rng.getstate() == reference_adversary._rng.getstate()

    def test_fallback_covers_corrupt_only_adversaries(self):
        adversary = _PerSlotOnlyAdversary()
        ctx = _window_ctx(link=(0, 1), base_round=10)
        delivered = adversary.corrupt_window(ctx, [1, None, 0])
        assert delivered == [0, None, 1]
        # the fallback materialised one per-slot context per slot, in order,
        # and interleaved the notification hook exactly like the slot path
        assert adversary.calls == [(10, 0, 1), (11, 1, None), (12, 2, 0)]
        assert adversary.notified == [(0, 1, 0), (1, None, None), (2, 0, 1)]

    def test_fallback_skips_silent_slots_for_non_inserting_adversaries(self):
        adversary = _PerSlotOnlyAdversary()
        adversary.may_insert = False
        delivered = adversary.corrupt_window(_window_ctx(), [None, 1, None])
        assert delivered == [None, 0, None]
        assert adversary.calls == [(1, 1, 1)]

    def test_window_context_slot_materialisation(self):
        ctx = _window_ctx(link=(3, 5), phase="rewind", iteration=7, base_round=100)
        slot = ctx.slot(4)
        assert slot == TransmissionContext(
            round_index=104, sender=3, receiver=5, phase="rewind", iteration=7, slot_index=4
        )
        assert ctx.sender == 3 and ctx.receiver == 5

    def test_window_context_equality_and_hash(self):
        a = _window_ctx(link=(0, 1), phase="simulation", iteration=1, base_round=4)
        b = _window_ctx(link=(0, 1), phase="simulation", iteration=1, base_round=4)
        c = _window_ctx(link=(1, 0), phase="simulation", iteration=1, base_round=4)
        assert a == b and a != c
        assert hash(a) == hash(b)
        assert {a, b, c} == {a, c}


#: Every stock adversary in every shipped mode, as fresh-instance builders.
#: The round-/link-keyed ones are configured to overlap the conformance
#: checker's default probe region so the interesting branches execute.
STOCK_CONTRACT_CASES = {
    "noiseless": lambda: NoiselessAdversary(),
    "additive": lambda: AdditiveObliviousAdversary(
        pattern={(3, 0, 1): 1, (17, 1, 0): 2, (40, 1, 2): 1}
    ),
    "fixing": lambda: FixingObliviousAdversary(
        pattern={(5, 0, 1): None, (20, 1, 2): 1, (33, 2, 1): 0}
    ),
    "random-noise": lambda: RandomNoiseAdversary(
        corruption_probability=0.3, insertion_probability=0.2, seed=1
    ),
    "random-noise-budgeted": lambda: RandomNoiseAdversary(
        corruption_probability=0.4, seed=2, budget=NoiseBudget(fraction=0.2)
    ),
    "random-noise-slot": lambda: RandomNoiseAdversary(
        corruption_probability=0.3, insertion_probability=0.2, seed=1, slot_addressed=True
    ),
    "deletion": lambda: DeletionAdversary(deletion_probability=0.3, seed=3),
    "deletion-slot": lambda: DeletionAdversary(
        deletion_probability=0.3, seed=3, slot_addressed=True
    ),
    "link-targeted": lambda: LinkTargetedAdversary(
        target=(0, 1), fraction=0.3, corruption_probability=0.8, seed=4
    ),
    "link-targeted-slot": lambda: LinkTargetedAdversary(
        target=(0, 1), corruption_probability=0.8, seed=4, slot_addressed=True
    ),
    "burst": lambda: BurstAdversary(start_round=10, end_round=40, max_corruptions=6, seed=5),
    "burst-slot": lambda: BurstAdversary(
        start_round=10, end_round=40, max_corruptions=None, seed=5, slot_addressed=True
    ),
    "composite-slot": lambda: CompositeAdversary(
        components=(
            RandomNoiseAdversary(corruption_probability=0.2, seed=6, slot_addressed=True),
            BurstAdversary(
                start_round=20, end_round=50, max_corruptions=None, seed=7, slot_addressed=True
            ),
        )
    ),
    "composite-stateful": lambda: CompositeAdversary(
        components=(
            RandomNoiseAdversary(corruption_probability=0.2, seed=6),
            BurstAdversary(start_round=20, end_round=50, max_corruptions=3, seed=7),
        )
    ),
    "echo-spoofing": lambda: EchoSpoofingAdversary(target=(0, 1), fraction=0.4, seed=8),
    "phase-targeted": lambda: PhaseTargetedAdaptiveAdversary(fraction=0.3, seed=9),
    "rotating-link": lambda: RotatingLinkAdaptiveAdversary(
        links=((0, 1), (1, 2)), fraction=0.3, seed=10
    ),
}


class TestCheckContract:
    """`repro.adversary.check_contract` conformance over every stock adversary."""

    @pytest.mark.parametrize(
        "builder", list(STOCK_CONTRACT_CASES.values()), ids=list(STOCK_CONTRACT_CASES)
    )
    def test_every_stock_adversary_conforms(self, builder):
        adversary = builder()
        report = check_contract(adversary)
        assert report.adversary == adversary.name
        assert report.slot_addressed is adversary.slot_addressed
        assert "batched-equivalence" in report.laws
        assert "packed-equivalence" in report.laws
        if adversary.slot_addressed:
            assert {"purity", "slot-decomposability", "path-agreement"} <= set(report.laws)
        else:
            assert "truthful-flag" in report.laws

    def test_checker_does_not_mutate_the_subject(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.5, seed=42)
        stream_before = adversary._rng.getstate()
        check_contract(adversary)
        assert adversary._rng.getstate() == stream_before

    def test_rejects_stateful_adversary_lying_about_slot_addressing(self):
        class LyingAdversary(RandomNoiseAdversary):
            """Claims the contract but draws from its sequential stream.

            All three paths agree bit for bit (so batched-equivalence holds),
            yet every evaluation advances ``self._rng`` — the purity law is
            what must catch it.
            """

            def corrupt(self, ctx, sent):
                if sent is None:
                    return None
                return sent if self._rng.random() >= 0.5 else 1 - sent

            def corruption_schedule(self, ctx, symbols):
                return [self.corrupt(None, sent) for sent in symbols]

            corrupt_window = corruption_schedule
            # Drop the parent's native packed kernel (it replays the *stock*
            # corrupt, not ours) so packed-equivalence holds via the fallback
            # and the purity law is what must catch the lie.
            corrupt_window_packed = Adversary.corrupt_window_packed

        lying = LyingAdversary(corruption_probability=0.0, seed=0)
        lying.slot_addressed = True
        with pytest.raises(ContractViolation, match="purity"):
            check_contract(lying)

    def test_rejects_window_position_dependent_schedule(self):
        class OffsetKeyedAdversary(NoiselessAdversary):
            """Pure and stateless, but keyed on window offset, not round."""

            def corruption_schedule(self, ctx, symbols):
                return [
                    (None if sent is None else 1 - sent) if offset == 0 else sent
                    for offset, sent in enumerate(symbols)
                ]

        with pytest.raises(ContractViolation, match="slot-decomposability"):
            check_contract(OffsetKeyedAdversary())

    def test_rejects_schedule_disagreeing_with_corrupt(self):
        class DisagreeingAdversary(NoiselessAdversary):
            # Restore the per-slot fallbacks so the batched and packed paths
            # both replay the divergent ``corrupt`` (their equivalence laws
            # hold) and only the schedule/corrupt disagreement is left to catch.
            corrupt_window = Adversary.corrupt_window
            corrupt_window_packed = Adversary.corrupt_window_packed

            def corrupt(self, ctx, sent):
                return None if sent == 1 else sent

        with pytest.raises(ContractViolation, match="path-agreement"):
            check_contract(DisagreeingAdversary())

    def test_rejects_untruthful_flag(self):
        class NotReallyStatefulAdversary(NoiselessAdversary):
            slot_addressed = False

        with pytest.raises(ContractViolation, match="truthful-flag"):
            check_contract(NotReallyStatefulAdversary())

    def test_rejects_batched_divergence(self):
        class DivergentBatchAdversary(DeletionAdversary):
            def corrupt_window(self, ctx, symbols):
                return list(symbols)  # skips the per-slot RNG draws

        divergent = DivergentBatchAdversary(deletion_probability=0.5, seed=1)
        with pytest.raises(ContractViolation, match="batched-equivalence"):
            check_contract(divergent)

    def test_rejects_packed_divergence(self):
        class DivergentPackedAdversary(DeletionAdversary):
            def corrupt_window_packed(self, ctx, bits, present, count):
                return bits, present  # skips the per-slot RNG draws

        divergent = DivergentPackedAdversary(deletion_probability=0.5, seed=1)
        with pytest.raises(ContractViolation, match="packed-equivalence"):
            check_contract(divergent)

    def test_rejects_packed_plane_invariant_break(self):
        class LeakyPlanesAdversary(NoiselessAdversary):
            def corrupt_window_packed(self, ctx, bits, present, count):
                # Claims a 1-bit on a slot it simultaneously marks silent.
                return (~present) & ((1 << count) - 1), present

        with pytest.raises(ContractViolation, match="packed-equivalence"):
            check_contract(LeakyPlanesAdversary())

    @pytest.mark.parametrize(
        "builder", list(STOCK_CONTRACT_CASES.values()), ids=list(STOCK_CONTRACT_CASES)
    )
    def test_conformance_is_recorder_invariant(self, builder):
        """An ambient flight recorder must not perturb the conformance probe.

        The probe replays the adversary's RNG and budget state across its
        windows; if recorder presence changed either, the same adversary
        would pass dark and fail observed (or vice versa).  Pin report
        equality and identical end state across the two runs.
        """
        from repro.adversary.contract import _state_snapshot
        from repro.obs import FlightRecorder, use_obs

        dark_report = check_contract(builder())
        observed_subject = builder()
        with use_obs(recorder=FlightRecorder()):
            observed_report = check_contract(observed_subject)
        assert observed_report == dark_report
        assert _state_snapshot(observed_subject) == _state_snapshot(builder())


class TestSlotAddressedModes:
    """Unit behaviour of the opt-in slot-addressed adversary modes."""

    def test_random_noise_rejects_budget(self):
        with pytest.raises(ValueError, match="cross-slot"):
            RandomNoiseAdversary(
                corruption_probability=0.5,
                seed=0,
                budget=NoiseBudget(fraction=0.1),
                slot_addressed=True,
            )

    def test_deletion_rejects_budget(self):
        with pytest.raises(ValueError, match="cross-slot"):
            DeletionAdversary(
                deletion_probability=0.5,
                seed=0,
                budget=NoiseBudget(fraction=0.1),
                slot_addressed=True,
            )

    def test_link_targeted_rejects_cross_slot_limits(self):
        with pytest.raises(ValueError, match="probability-only"):
            LinkTargetedAdversary(target=(0, 1), max_corruptions=3, seed=0, slot_addressed=True)
        with pytest.raises(ValueError, match="probability-only"):
            LinkTargetedAdversary(target=(0, 1), fraction=0.1, seed=0, slot_addressed=True)

    def test_burst_cap_rules(self):
        with pytest.raises(ValueError, match="must be None"):
            BurstAdversary(start_round=0, end_round=9, max_corruptions=3, slot_addressed=True)
        with pytest.raises(ValueError, match="only be None"):
            BurstAdversary(start_round=0, end_round=9, max_corruptions=None)

    def test_schedule_requires_the_flag(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.5, seed=0)
        with pytest.raises(RuntimeError, match="not slot-addressed"):
            adversary.corruption_schedule(_window_ctx(), (1, 0, 1))

    def test_slot_addressed_schedule_is_grouping_independent(self):
        adversary = RandomNoiseAdversary(
            corruption_probability=0.5, insertion_probability=0.3, seed=13, slot_addressed=True
        )
        symbols = (1, 0, None, 1, None, 0, 1, 1)
        whole = adversary.corruption_schedule(_window_ctx(base_round=100), symbols)
        halves = adversary.corruption_schedule(
            _window_ctx(base_round=100), symbols[:4]
        ) + adversary.corruption_schedule(_window_ctx(base_round=104), symbols[4:])
        reversed_slots = [
            adversary.corruption_schedule(_window_ctx(base_round=100 + offset), (symbols[offset],))[0]
            for offset in reversed(range(len(symbols)))
        ][::-1]
        assert whole == halves == reversed_slots

    def test_composite_slot_addressing_propagates(self):
        pure = CompositeAdversary(
            components=(
                NoiselessAdversary(),
                RandomNoiseAdversary(corruption_probability=0.2, seed=0, slot_addressed=True),
            )
        )
        assert pure.slot_addressed is True
        poisoned = CompositeAdversary(
            components=(
                RandomNoiseAdversary(corruption_probability=0.2, seed=0, slot_addressed=True),
                EchoSpoofingAdversary(target=(0, 1), fraction=0.1, seed=1),
            )
        )
        assert poisoned.slot_addressed is False

    def test_stateful_stock_adversaries_report_false(self):
        stateful = [
            RandomNoiseAdversary(corruption_probability=0.1, seed=0),
            DeletionAdversary(deletion_probability=0.1, seed=0),
            LinkTargetedAdversary(target=(0, 1), fraction=0.1, seed=0),
            BurstAdversary(start_round=0, end_round=5, max_corruptions=2, seed=0),
            EchoSpoofingAdversary(target=(0, 1), fraction=0.1, seed=0),
            PhaseTargetedAdaptiveAdversary(fraction=0.1, seed=0),
            RotatingLinkAdaptiveAdversary(links=((0, 1),), fraction=0.1, seed=0),
        ]
        for adversary in stateful:
            assert adversary.slot_addressed is False, adversary.name

    def test_oblivious_stock_adversaries_report_true_natively(self):
        assert NoiselessAdversary().slot_addressed is True
        assert AdditiveObliviousAdversary(pattern={(0, 0, 1): 1}).slot_addressed is True
        assert FixingObliviousAdversary(pattern={(0, 0, 1): None}).slot_addressed is True
