"""Unit tests for repro.utils.bitstring."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitstring import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    longest_common_prefix_length,
    parity,
    symbol_to_bit,
    symbols_to_bits,
    xor_bits,
)


class TestBitsIntConversion:
    def test_bits_to_int_basic(self):
        assert bits_to_int([1, 0, 1]) == 5
        assert bits_to_int([]) == 0
        assert bits_to_int([0, 0, 0, 1]) == 8

    def test_int_to_bits_basic(self):
        assert int_to_bits(5, 4) == [1, 0, 1, 0]
        assert int_to_bits(0, 3) == [0, 0, 0]
        assert int_to_bits(7, 3) == [1, 1, 1]

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    @given(st.lists(st.integers(0, 1), max_size=64))
    def test_roundtrip(self, bits):
        assert int_to_bits(bits_to_int(bits), len(bits)) == bits

    @given(st.integers(0, 2**48 - 1))
    def test_roundtrip_int(self, value):
        assert bits_to_int(int_to_bits(value, 48)) == value


class TestByteConversion:
    def test_bytes_to_bits_length(self):
        assert len(bytes_to_bits(b"ab")) == 16

    def test_roundtrip_bytes(self):
        data = b"hello world"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(max_size=64))
    def test_roundtrip_random(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestParityAndDistance:
    def test_parity(self):
        assert parity(0) == 0
        assert parity(0b1011) == 1
        assert parity(0b11) == 0

    def test_hamming_distance(self):
        assert hamming_distance([0, 1, 1], [0, 0, 1]) == 1
        assert hamming_distance([], []) == 0

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([0], [0, 1])

    def test_xor_bits(self):
        assert xor_bits([1, 0, 1], [1, 1, 0]) == [0, 1, 1]

    def test_xor_bits_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bits([1], [1, 0])


class TestSymbolsAndPrefix:
    def test_symbols_to_bits_fills_erasures(self):
        assert symbols_to_bits([1, None, 0]) == [1, 0, 0]
        assert symbols_to_bits([None], erasure_fill=1) == [1]

    def test_symbol_to_bit_matches_sequence_helper(self):
        for symbol in (0, 1, None):
            assert [symbol_to_bit(symbol)] == symbols_to_bits([symbol])
        assert symbol_to_bit(None, erasure_fill=1) == 1

    def test_longest_common_prefix(self):
        assert longest_common_prefix_length("abcd", "abxy") == 2
        assert longest_common_prefix_length([1, 2], [1, 2, 3]) == 2
        assert longest_common_prefix_length([], [1]) == 0

    @given(st.lists(st.integers(0, 3)), st.lists(st.integers(0, 3)))
    def test_prefix_is_common(self, a, b):
        k = longest_common_prefix_length(a, b)
        assert a[:k] == b[:k]
        if k < min(len(a), len(b)):
            assert a[k] != b[k]
