"""Unit tests for repro.utils.bitstring."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitstring import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    longest_common_prefix_length,
    pack_symbols,
    parity,
    symbol_to_bit,
    symbols_to_bits,
    unpack_symbols,
    xor_bits,
)

symbol_windows = st.lists(st.sampled_from([0, 1, None]), max_size=96)


class TestBitsIntConversion:
    def test_bits_to_int_basic(self):
        assert bits_to_int([1, 0, 1]) == 5
        assert bits_to_int([]) == 0
        assert bits_to_int([0, 0, 0, 1]) == 8

    def test_int_to_bits_basic(self):
        assert int_to_bits(5, 4) == [1, 0, 1, 0]
        assert int_to_bits(0, 3) == [0, 0, 0]
        assert int_to_bits(7, 3) == [1, 1, 1]

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    @given(st.lists(st.integers(0, 1), max_size=64))
    def test_roundtrip(self, bits):
        assert int_to_bits(bits_to_int(bits), len(bits)) == bits

    @given(st.integers(0, 2**48 - 1))
    def test_roundtrip_int(self, value):
        assert bits_to_int(int_to_bits(value, 48)) == value


class TestByteConversion:
    def test_bytes_to_bits_length(self):
        assert len(bytes_to_bits(b"ab")) == 16

    def test_roundtrip_bytes(self):
        data = b"hello world"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(max_size=64))
    def test_roundtrip_random(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestParityAndDistance:
    def test_parity(self):
        assert parity(0) == 0
        assert parity(0b1011) == 1
        assert parity(0b11) == 0

    def test_hamming_distance(self):
        assert hamming_distance([0, 1, 1], [0, 0, 1]) == 1
        assert hamming_distance([], []) == 0

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([0], [0, 1])

    def test_xor_bits(self):
        assert xor_bits([1, 0, 1], [1, 1, 0]) == [0, 1, 1]

    def test_xor_bits_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bits([1], [1, 0])


class TestSymbolsAndPrefix:
    def test_symbols_to_bits_fills_erasures(self):
        assert symbols_to_bits([1, None, 0]) == [1, 0, 0]
        assert symbols_to_bits([None], erasure_fill=1) == [1]

    def test_symbol_to_bit_matches_sequence_helper(self):
        for symbol in (0, 1, None):
            assert [symbol_to_bit(symbol)] == symbols_to_bits([symbol])
        assert symbol_to_bit(None, erasure_fill=1) == 1

    def test_longest_common_prefix(self):
        assert longest_common_prefix_length("abcd", "abxy") == 2
        assert longest_common_prefix_length([1, 2], [1, 2, 3]) == 2
        assert longest_common_prefix_length([], [1]) == 0

    @given(st.lists(st.integers(0, 3)), st.lists(st.integers(0, 3)))
    def test_prefix_is_common(self, a, b):
        k = longest_common_prefix_length(a, b)
        assert a[:k] == b[:k]
        if k < min(len(a), len(b)):
            assert a[k] != b[k]


class TestPackedSymbolPlanes:
    """The packed ``(bits, present)`` plane pair the hot transport path runs on."""

    def test_pack_symbols_doc_example(self):
        assert pack_symbols([1, None, 0, 1]) == (9, 13)
        assert unpack_symbols(9, 13, 4) == [1, None, 0, 1]

    def test_pack_symbols_rejects_non_symbols(self):
        with pytest.raises(ValueError):
            pack_symbols([0, 2])

    def test_unpack_symbols_rejects_invariant_breaks(self):
        with pytest.raises(ValueError):
            unpack_symbols(2, 1, 2)  # bits outside the present plane
        with pytest.raises(ValueError):
            unpack_symbols(0, 4, 2)  # present bit beyond the window
        with pytest.raises(ValueError):
            unpack_symbols(0, 0, -1)

    @given(symbol_windows)
    def test_roundtrip_and_invariant(self, symbols):
        bits, present = pack_symbols(symbols)
        assert bits & ~present == 0
        assert present >> len(symbols) == 0
        assert unpack_symbols(bits, present, len(symbols)) == symbols

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_roundtrip_from_planes(self, a, b):
        present = a | b
        bits = a  # a ⊆ a|b by construction, so the invariant holds
        assert pack_symbols(unpack_symbols(bits, present, 64)) == (bits, present)

    @given(symbol_windows)
    def test_popcount_statistics_match_symbol_counts(self, symbols):
        """The O(1)-popcount accounting of the packed transport path counts
        exactly what a per-slot walk over the symbols would."""
        bits, present = pack_symbols(symbols)
        assert present.bit_count() == sum(1 for s in symbols if s is not None)
        assert bits.bit_count() == sum(1 for s in symbols if s == 1)
        # Substitution mask against a reference delivery plane pair.
        delivered = [None if s is None else 1 - s for s in symbols]
        dbits, dpresent = pack_symbols(delivered)
        assert dpresent == present
        flips = (bits ^ dbits) & present
        assert flips.bit_count() == sum(1 for s in symbols if s is not None)


class TestPackedTranscriptRoundTrip:
    """Packed transcript/digest accessors vs the historical unpacked path.

    ``LinkTranscript.prefix_raw`` / ``prefix_fingerprint`` serve the
    meeting-points hashing from packed integers; both must stay bit-for-bit
    what the pre-packed code computed from ``serialize_prefix`` via
    ``bits_to_int(bytes_to_bits(...))`` / ``fingerprint_bits``.
    """

    @staticmethod
    def _transcript(chunks):
        from repro.core.transcript import ChunkRecord, LinkTranscript

        transcript = LinkTranscript(owner=0, neighbor=1)
        for index, view in enumerate(chunks):
            transcript.append(ChunkRecord(chunk_index=index, link_view=tuple(view)))
        return transcript

    @given(st.lists(st.lists(st.sampled_from([0, 1, None]), max_size=12), max_size=8))
    def test_prefix_raw_matches_unpacked_packing(self, chunks):
        transcript = self._transcript(chunks)
        for prefix in range(len(chunks) + 1):
            serialized = transcript.serialize_prefix(prefix)
            assert transcript.prefix_raw(prefix) == bits_to_int(bytes_to_bits(serialized))
            assert transcript.prefix_raw(prefix) == int.from_bytes(serialized, "little")

    @given(st.lists(st.lists(st.sampled_from([0, 1, None]), max_size=12), min_size=1, max_size=6))
    def test_prefix_fingerprint_matches_direct_digest(self, chunks):
        from repro.hashing.inner_product import fingerprint_bits

        transcript = self._transcript(chunks)
        for prefix in range(len(chunks) + 1):
            expected = fingerprint_bits(transcript.serialize_prefix(prefix))
            assert transcript.prefix_fingerprint(prefix) == expected

    @given(st.lists(st.lists(st.sampled_from([0, 1, None]), max_size=10), min_size=2, max_size=6),
           st.integers(0, 5))
    def test_packed_caches_survive_truncation(self, chunks, keep):
        transcript = self._transcript(chunks)
        full = [transcript.prefix_raw(i) for i in range(len(chunks) + 1)]
        transcript.truncate_to(keep)
        kept = min(keep, len(chunks))
        assert transcript.prefix_raw(kept) == full[kept]
        serialized = transcript.serialize_prefix(kept)
        assert transcript.prefix_raw(kept) == int.from_bytes(serialized, "little")
