"""Unit tests for the BFS spanning tree used by flag passing."""

from __future__ import annotations

import pytest

from repro.network.spanning_tree import SpanningTree
from repro.network.topologies import complete_topology, line_topology, random_connected_topology, star_topology


class TestSpanningTreeStructure:
    def test_line_tree(self):
        tree = SpanningTree(line_topology(4), root=0)
        assert tree.parent[0] is None
        assert tree.parent[3] == 2
        assert tree.level[0] == 1
        assert tree.level[3] == 4
        assert tree.depth == 4

    def test_star_tree(self):
        tree = SpanningTree(star_topology(5), root=0)
        assert tree.depth == 2
        assert all(tree.parent[i] == 0 for i in range(1, 5))
        assert tree.children[0] == [1, 2, 3, 4]

    def test_clique_tree_depth(self):
        tree = SpanningTree(complete_topology(6), root=2)
        assert tree.depth == 2
        assert tree.root == 2

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            SpanningTree(line_topology(3), root=9)

    def test_tree_edges_count(self):
        graph = random_connected_topology(10, 0.4, seed=1)
        tree = SpanningTree(graph)
        assert len(tree.tree_edges()) == graph.num_nodes - 1
        # every tree edge must be a graph edge
        assert all(graph.has_edge(u, v) for u, v in tree.tree_edges())

    def test_levels_consistent_with_parents(self):
        graph = random_connected_topology(12, 0.3, seed=5)
        tree = SpanningTree(graph)
        for node, parent in tree.parent.items():
            if parent is not None:
                assert tree.level[node] == tree.level[parent] + 1


class TestOrderingsAndSubtrees:
    def test_bottom_up_and_top_down(self):
        tree = SpanningTree(line_topology(5))
        bottom_up = tree.nodes_bottom_up()
        top_down = tree.nodes_top_down()
        assert bottom_up[0] == 4
        assert top_down[0] == 0
        assert sorted(bottom_up) == sorted(top_down) == list(range(5))

    def test_is_leaf(self):
        tree = SpanningTree(star_topology(4), root=0)
        assert not tree.is_leaf(0)
        assert tree.is_leaf(3)

    def test_subtree_nodes(self):
        tree = SpanningTree(line_topology(5), root=0)
        assert tree.subtree_nodes(2) == [2, 3, 4]
        assert tree.subtree_nodes(0) == [0, 1, 2, 3, 4]
