"""Tests for scheme parameters and the Algorithm A/B/C presets."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    SCHEME_PRESETS,
    SchemeParameters,
    algorithm_a,
    algorithm_b,
    algorithm_c,
    crs_oblivious_scheme,
    scheme_by_name,
)
from repro.network.topologies import complete_topology, line_topology


class TestScaling:
    def test_k_modes(self):
        graph = complete_topology(6)  # m = 15
        assert SchemeParameters(k_mode="m").scale_k(graph) == 15
        assert SchemeParameters(k_mode="m_log_m").scale_k(graph) == 15 * 4
        # ceil(log2(ceil(log2 15) + 1)) = ceil(log2 5) = 3
        assert SchemeParameters(k_mode="m_log_log_m").scale_k(graph) == 15 * 3

    def test_fixed_k(self):
        graph = line_topology(3)
        assert SchemeParameters(k_mode="fixed", k_fixed=7).scale_k(graph) == 7
        with pytest.raises(ValueError):
            SchemeParameters(k_mode="fixed").scale_k(graph)

    def test_unknown_k_mode(self):
        with pytest.raises(ValueError):
            SchemeParameters(k_mode="bogus").scale_k(line_topology(3))

    def test_chunk_budget(self):
        graph = line_topology(5)  # m = 4
        assert SchemeParameters(k_mode="m", chunk_multiplier=5).chunk_budget(graph) == 20

    def test_hash_output_bits(self):
        graph = complete_topology(8)  # m = 28
        assert SchemeParameters(hash_mode="constant", hash_constant_bits=6).hash_output_bits(graph) == 6
        log_mode = SchemeParameters(hash_mode="log_m", hash_constant_bits=6)
        assert log_mode.hash_output_bits(graph) >= 9  # ceil(log2 28) + 4
        with pytest.raises(ValueError):
            SchemeParameters(hash_mode="bogus").hash_output_bits(graph)

    def test_nominal_noise_fraction_ordering(self):
        graph = complete_topology(6)
        a = algorithm_a().nominal_noise_fraction(graph)
        b = algorithm_b().nominal_noise_fraction(graph)
        c = algorithm_c().nominal_noise_fraction(graph)
        assert a > c > b  # eps/m > eps/(m log log m) > eps/(m log m)

    def test_iterations_budget(self):
        params = SchemeParameters(iteration_factor=4.0, extra_iterations=2, min_iterations=10)
        assert params.iterations(1) == 10
        assert params.iterations(10) == 42

    def test_rewind_round_count_default_is_n(self):
        graph = line_topology(7)
        assert SchemeParameters().rewind_round_count(graph) == 7
        assert SchemeParameters(rewind_rounds=3).rewind_round_count(graph) == 3

    def test_with_overrides(self):
        params = algorithm_a().with_overrides(hash_constant_bits=4)
        assert params.hash_constant_bits == 4
        assert params.name == "algorithm_a"
        # the original is unchanged (frozen dataclass semantics)
        assert algorithm_a().hash_constant_bits == 8


class TestPresets:
    def test_preset_identities(self):
        assert crs_oblivious_scheme().use_crs is True
        assert algorithm_a().use_crs is False
        assert algorithm_a().k_mode == "m"
        assert algorithm_b().use_crs is False
        assert algorithm_b().k_mode == "m_log_m"
        assert algorithm_b().hash_mode == "log_m"
        assert algorithm_c().use_crs is True
        assert algorithm_c().k_mode == "m_log_log_m"

    def test_scheme_by_name(self):
        for name in SCHEME_PRESETS:
            assert scheme_by_name(name).name == name
        with pytest.raises(ValueError):
            scheme_by_name("algorithm_z")

    def test_preset_overrides(self):
        params = scheme_by_name("algorithm_b", iteration_factor=2.0)
        assert params.iteration_factor == 2.0
