"""Tests for the randomness exchange (Algorithm 5)."""

from __future__ import annotations


from repro.adversary.strategies import DeletionAdversary, LinkTargetedAdversary, RandomNoiseAdversary
from repro.core.randomness_exchange import run_randomness_exchange
from repro.hashing.seeds import ExchangedSeedSource
from repro.network.topologies import line_topology, star_topology
from repro.network.transport import NoisyNetwork
from repro.utils.rng import make_rng


class TestCleanExchange:
    def test_all_links_agree(self):
        graph = line_topology(4)
        network = NoisyNetwork(graph)
        report = run_randomness_exchange(graph, network, make_rng(0), field_degree=32)
        assert all(report.agreed.values())
        assert report.corrupted_links == []
        assert report.communication > 0
        assert set(report.seed_sources) == set(graph.directed_edges())

    def test_endpoints_derive_identical_hash_seeds(self):
        graph = line_topology(3)
        network = NoisyNetwork(graph)
        report = run_randomness_exchange(graph, network, make_rng(1), field_degree=32)
        for u, v in graph.edges:
            source_u = report.seed_sources[(u, v)]
            source_v = report.seed_sources[(v, u)]
            assert isinstance(source_u, ExchangedSeedSource)
            assert source_u.seed_for(0, "mp_prefix", 256) == source_v.seed_for(0, "mp_prefix", 256)

    def test_communication_scales_with_links(self):
        small_graph = line_topology(3)
        big_graph = star_topology(7)
        small = run_randomness_exchange(small_graph, NoisyNetwork(small_graph), make_rng(0), field_degree=32)
        big = run_randomness_exchange(big_graph, NoisyNetwork(big_graph), make_rng(0), field_degree=32)
        assert big.communication == small.communication * big_graph.num_edges // small_graph.num_edges


class TestNoisyExchange:
    def test_light_noise_is_corrected(self):
        graph = line_topology(4)
        adversary = RandomNoiseAdversary(corruption_probability=0.01, seed=2)
        network = NoisyNetwork(graph, adversary=adversary)
        report = run_randomness_exchange(graph, network, make_rng(3), field_degree=32)
        assert all(report.agreed.values())

    def test_deletions_are_treated_as_erasures(self):
        graph = line_topology(3)
        adversary = DeletionAdversary(deletion_probability=0.05, seed=4)
        network = NoisyNetwork(graph, adversary=adversary)
        report = run_randomness_exchange(graph, network, make_rng(5), field_degree=32)
        assert all(report.agreed.values())

    def test_heavy_targeted_noise_breaks_one_link(self):
        graph = line_topology(4)
        adversary = LinkTargetedAdversary(
            target=(0, 1), phases=("randomness_exchange",), max_corruptions=10_000, seed=6
        )
        network = NoisyNetwork(graph, adversary=adversary)
        report = run_randomness_exchange(graph, network, make_rng(7), field_degree=32)
        assert report.agreed[(0, 1)] is False
        # the untouched links still agree
        assert report.agreed[(1, 2)] is True
        assert report.agreed[(2, 3)] is True
        assert report.corrupted_links == [(0, 1)]

    def test_mismatched_seeds_produce_mismatched_hash_seeds(self):
        graph = line_topology(3)
        adversary = LinkTargetedAdversary(
            target=(0, 1), phases=("randomness_exchange",), max_corruptions=10_000, seed=8
        )
        network = NoisyNetwork(graph, adversary=adversary)
        report = run_randomness_exchange(graph, network, make_rng(9), field_degree=32)
        source_u = report.seed_sources[(0, 1)]
        source_v = report.seed_sources[(1, 0)]
        assert source_u.seed_for(0, "mp_prefix", 256) != source_v.seed_for(0, "mp_prefix", 256)
