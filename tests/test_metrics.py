"""Tests for run metrics and aggregation."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import RunMetrics, summarize_runs


def _run(success=True, cc_protocol=100, cc_simulation=500, corruptions=3, scheme="algorithm_a"):
    return RunMetrics(
        scheme=scheme,
        success=success,
        protocol_communication=cc_protocol,
        simulation_communication=cc_simulation,
        corruptions=corruptions,
        noise_fraction=corruptions / cc_simulation if cc_simulation else 0.0,
        iterations_run=7,
        iterations_budget=20,
    )


class TestRunMetrics:
    def test_overhead_and_rate(self):
        run = _run()
        assert run.overhead == pytest.approx(5.0)
        assert run.rate == pytest.approx(0.2)

    def test_degenerate_cases(self):
        assert _run(cc_protocol=0).overhead == float("inf")
        assert _run(cc_simulation=0).rate == 0.0

    def test_as_dict_contains_core_fields(self):
        data = _run().as_dict()
        for key in ("scheme", "success", "overhead", "rate", "corruptions", "noise_fraction"):
            assert key in data


class TestAggregation:
    def test_summary_statistics(self):
        runs = [_run(success=True), _run(success=False, cc_simulation=1000), _run(success=True)]
        aggregate = summarize_runs(runs)
        assert aggregate.trials == 3
        assert aggregate.successes == 2
        assert aggregate.success_rate == pytest.approx(2 / 3)
        assert aggregate.mean_overhead == pytest.approx((5 + 10 + 5) / 3)
        assert aggregate.scheme == "algorithm_a"

    def test_explicit_scheme_label(self):
        aggregate = summarize_runs([_run()], scheme="custom")
        assert aggregate.scheme == "custom"

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_as_dict(self):
        data = summarize_runs([_run()]).as_dict()
        assert data["trials"] == 1
        assert data["success_rate"] == 1.0
