"""Integration tests: the simulator under noise within the tolerated budget."""

from __future__ import annotations

import pytest

from repro.adversary.oblivious import AdditiveObliviousAdversary
from repro.adversary.strategies import (
    BurstAdversary,
    CompositeAdversary,
    DeletionAdversary,
    LinkTargetedAdversary,
    RandomNoiseAdversary,
)
from repro.core.engine import simulate
from repro.core.parameters import crs_oblivious_scheme


class TestRandomNoiseRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_low_random_noise_is_absorbed(self, gossip_line5, seed):
        adversary = RandomNoiseAdversary(corruption_probability=0.002, seed=seed + 10)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=seed)
        assert result.success

    def test_noise_with_insertions(self, gossip_line5):
        adversary = RandomNoiseAdversary(
            corruption_probability=0.002, insertion_probability=0.0005, seed=3
        )
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=3)
        assert result.success

    def test_pure_deletion_noise(self, gossip_line5):
        adversary = DeletionAdversary(deletion_probability=0.004, seed=4)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=4)
        assert result.success

    def test_recovery_costs_extra_iterations(self, gossip_line5):
        clean = simulate(gossip_line5, scheme=crs_oblivious_scheme(), seed=5)
        adversary = RandomNoiseAdversary(corruption_probability=0.004, seed=6)
        noisy = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=5)
        assert noisy.success
        assert noisy.iterations_run >= clean.iterations_run
        assert noisy.metrics.corruptions > 0

    def test_excessive_noise_fails(self, gossip_line5):
        adversary = RandomNoiseAdversary(corruption_probability=0.08, seed=7)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=7)
        assert not result.success


class TestTargetedNoiseRecovery:
    def test_single_simulation_error(self, line_example6):
        adversary = LinkTargetedAdversary(
            target=(0, 1), phases=("simulation",), max_corruptions=1, seed=1
        )
        result = simulate(line_example6, scheme=crs_oblivious_scheme(), adversary=adversary, seed=1)
        assert result.success
        assert result.metrics.corruptions == 1
        assert result.metrics.meeting_point_truncations + result.metrics.rewinds_sent > 0

    def test_error_burst_on_control_traffic(self, gossip_line5):
        adversary = LinkTargetedAdversary(
            target=(1, 2), phases=("meeting_points",), max_corruptions=3, seed=2
        )
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=2)
        assert result.success

    def test_error_on_flag_passing(self, gossip_line5):
        adversary = LinkTargetedAdversary(
            target=(1, 0), phases=("flag_passing",), max_corruptions=2, seed=3
        )
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=3)
        assert result.success

    def test_error_on_rewind_messages(self, gossip_line5):
        adversary = LinkTargetedAdversary(
            target=(2, 3), phases=("rewind",), max_corruptions=2, seed=4
        )
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=4)
        assert result.success

    def test_round_burst(self, gossip_line5):
        adversary = BurstAdversary(start_round=40, end_round=60, max_corruptions=4, seed=5)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=5)
        assert result.success

    def test_composite_attack(self, gossip_line5):
        adversary = CompositeAdversary(
            components=(
                RandomNoiseAdversary(corruption_probability=0.001, seed=6),
                LinkTargetedAdversary(target=(0, 1), phases=("simulation",), max_corruptions=2, seed=7),
            )
        )
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=6)
        assert result.success


class TestAdditiveObliviousAdversary:
    def test_explicit_additive_pattern(self, gossip_line5):
        # Corrupt two early simulation-phase slots of link (0, 1).  Round
        # numbers are deterministic because the phase layout is fixed; slots
        # that end up silent become insertions, which is fine.
        pattern = {(200, 0, 1): 1, (420, 1, 0): 2}
        adversary = AdditiveObliviousAdversary(pattern=pattern)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=8)
        assert result.success

    def test_additive_pattern_counts_corruptions(self, gossip_line5):
        pattern = {(5, 0, 1): 1}
        adversary = AdditiveObliviousAdversary(pattern=pattern)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=9)
        assert result.metrics.corruptions >= 1


class TestNoiseAccounting:
    def test_noise_fraction_reported(self, gossip_line5):
        adversary = RandomNoiseAdversary(corruption_probability=0.005, seed=10)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=10)
        assert result.noise_fraction == pytest.approx(
            result.metrics.corruptions / result.metrics.simulation_communication, rel=0.2
        )

    def test_corruptions_by_phase_sum(self, gossip_line5):
        adversary = RandomNoiseAdversary(corruption_probability=0.01, seed=11)
        result = simulate(gossip_line5, scheme=crs_oblivious_scheme(), adversary=adversary, seed=11)
        assert sum(result.metrics.corruptions_by_phase.values()) == result.metrics.corruptions
