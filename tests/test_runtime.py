"""Tests for the runtime subsystem: backends, trial keys, cache, run store.

The three guarantees the runtime makes (and the acceptance criteria of the
subsystem) are pinned here:

1. ``ProcessPoolBackend`` is bit-identical to ``SerialBackend`` for the same
   base seed (parallelism changes where a trial runs, never what it computes);
2. with caching enabled, a repeated ``run_trials`` call performs **zero** new
   simulations (asserted via the backend's execution counter and the cache's
   hit counter);
3. a ``RunStore`` round-trips every ``RunMetrics``/``AggregateMetrics``
   losslessly (persist → list → load equals the original).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.metrics import AggregateMetrics, RunMetrics
from repro.core.parameters import algorithm_a, crs_oblivious_scheme
from repro.experiments.factories import (
    NoiselessFactory,
    RandomNoiseFactory,
)
from repro.experiments.harness import run_trials
from repro.experiments.noise_sweep import noise_sweep
from repro.experiments.workloads import WORKLOAD_BUILDERS, gossip_workload, pairwise_workload
from repro.runtime import (
    ProcessPoolBackend,
    ResultCache,
    RunStore,
    SerialBackend,
    TrialSpec,
    execute_trials,
    fingerprint_trial,
    get_runtime,
    use_runtime,
)
from repro.runtime.spec import build_trial_specs, derive_trial_seed


class TestSerialParallelDeterminism:
    def test_process_pool_matches_serial_bit_for_bit(self):
        """The headline guarantee: same base seed ⇒ same metrics, any backend."""
        workload = gossip_workload(topology="line", num_nodes=5, phases=6)
        scheme = algorithm_a()
        factory = RandomNoiseFactory(fraction=0.004)

        serial = run_trials(
            workload, scheme, adversary_factory=factory, trials=4, base_seed=3,
            backend=SerialBackend(), cache=None,
        )
        parallel = run_trials(
            workload, scheme, adversary_factory=factory, trials=4, base_seed=3,
            backend=ProcessPoolBackend(max_workers=2), cache=None,
        )
        assert serial.runs == parallel.runs          # RunMetrics are frozen dataclasses
        assert serial.aggregate == parallel.aggregate

    def test_every_workload_survives_pickling_through_the_pool(self):
        """Every built-in workload must execute under a process pool."""
        backend = ProcessPoolBackend(max_workers=2, chunk_size=1)
        scheme = crs_oblivious_scheme()
        for name in sorted(WORKLOAD_BUILDERS):
            workload = WORKLOAD_BUILDERS[name]()
            trial_set = run_trials(
                workload, scheme, adversary_factory=NoiselessFactory(),
                trials=2, backend=backend, cache=None,
            )
            assert trial_set.aggregate.success_rate == 1.0, name

    def test_chunking_preserves_order(self):
        workload = pairwise_workload()
        scheme = crs_oblivious_scheme()
        seeds = [derive_trial_seed(0, trial) for trial in range(5)]
        specs = build_trial_specs(workload, scheme, NoiselessFactory(), seeds)
        serial = SerialBackend().run(specs)
        pooled = ProcessPoolBackend(max_workers=2, chunk_size=2).run(specs)
        assert serial == pooled

    def test_backend_argument_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunk_size=0)


class TestTrialKeys:
    def test_identical_specs_fingerprint_identically(self):
        scheme = algorithm_a()
        factory = RandomNoiseFactory(fraction=0.004)
        key_a = fingerprint_trial(TrialSpec(gossip_workload(), scheme, factory, 17))
        key_b = fingerprint_trial(TrialSpec(gossip_workload(), scheme, factory, 17))
        assert key_a.stable and key_b.stable
        assert key_a.digest == key_b.digest

    def test_fingerprint_is_invariant_under_use(self):
        """Using a workload must not change its fingerprint (protocol lazy
        caches — ``_schedule``, round-layout tables — are excluded from the
        canonical payload)."""
        scheme = algorithm_a()
        factory = RandomNoiseFactory(fraction=0.004)
        for name in sorted(WORKLOAD_BUILDERS):
            used = WORKLOAD_BUILDERS[name]()
            used.protocol.schedule()        # populate every lazy cache
            used.protocol.run_noiseless()
            fresh = WORKLOAD_BUILDERS[name]()
            key_used = fingerprint_trial(TrialSpec(used, scheme, factory, 17))
            key_fresh = fingerprint_trial(TrialSpec(fresh, scheme, factory, 17))
            assert key_used.digest == key_fresh.digest, name
        # ... and a full noisy simulation does not change it either.
        used = gossip_workload()
        run_trials(used, scheme, adversary_factory=factory, trials=1, cache=None)
        key_used = fingerprint_trial(TrialSpec(used, scheme, factory, 17))
        key_fresh = fingerprint_trial(TrialSpec(gossip_workload(), scheme, factory, 17))
        assert key_used.digest == key_fresh.digest

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w, s, f: (w, s, f, 18),                                   # seed
            lambda w, s, f: (w, s.with_overrides(chunk_multiplier=7), f, 17),  # scheme
            lambda w, s, f: (w, s, RandomNoiseFactory(fraction=0.005), 17),  # adversary
            lambda w, s, f: (gossip_workload(phases=9), s, f, 17),           # workload
        ],
    )
    def test_any_ingredient_change_changes_the_digest(self, mutate):
        workload, scheme, factory = gossip_workload(), algorithm_a(), RandomNoiseFactory(fraction=0.004)
        base = fingerprint_trial(TrialSpec(workload, scheme, factory, 17))
        changed = fingerprint_trial(TrialSpec(*mutate(workload, scheme, factory)))
        assert base.digest != changed.digest

    def test_lambda_factories_are_unstable(self):
        key = fingerprint_trial(
            TrialSpec(gossip_workload(), algorithm_a(), lambda seed: None, 17)
        )
        assert not key.stable


class TestResultCache:
    def test_second_run_trials_call_runs_zero_new_simulations(self):
        """Acceptance criterion: a repeated call is served entirely from cache."""
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        scheme = algorithm_a()
        factory = RandomNoiseFactory(fraction=0.004)
        backend = SerialBackend()
        cache = ResultCache()

        first = run_trials(workload, scheme, adversary_factory=factory, trials=4,
                           backend=backend, cache=cache)
        assert backend.trials_executed == 4
        assert cache.stats.stores == 4

        second = run_trials(workload, scheme, adversary_factory=factory, trials=4,
                            backend=backend, cache=cache)
        assert backend.trials_executed == 4      # zero new simulations
        assert cache.stats.hits == 4
        assert first.runs == second.runs
        assert first.aggregate == second.aggregate

    def test_disk_cache_survives_across_instances(self, tmp_path):
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        scheme = algorithm_a()
        factory = RandomNoiseFactory(fraction=0.004)

        warm_backend = SerialBackend()
        first = run_trials(workload, scheme, adversary_factory=factory, trials=3,
                           backend=warm_backend, cache=ResultCache(tmp_path))

        # A fresh cache instance (≈ a new process) reloads from disk.
        cold_cache = ResultCache(tmp_path)
        assert len(cold_cache) == 3
        cold_backend = SerialBackend()
        second = run_trials(gossip_workload(topology="line", num_nodes=4, phases=6),
                            scheme, adversary_factory=RandomNoiseFactory(fraction=0.004),
                            trials=3, backend=cold_backend, cache=cold_cache)
        assert cold_backend.trials_executed == 0
        assert first.runs == second.runs

    def test_corrupt_cache_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        path.write_text('not json\n{"schema": 999, "key": "x", "metrics": {}}\n')
        cache = ResultCache(tmp_path)
        assert len(cache) == 0

    def test_unstable_keys_bypass_the_cache(self):
        workload = pairwise_workload()
        scheme = crs_oblivious_scheme()
        backend = SerialBackend()
        cache = ResultCache()
        factory = lambda seed: NoiselessFactory()(seed)  # noqa: E731 — deliberately unstable
        specs = build_trial_specs(workload, scheme, factory, [17, 1017])
        execute_trials(specs, backend=backend, cache=cache)
        execute_trials(specs, backend=backend, cache=cache)
        assert backend.trials_executed == 4              # nothing was cached
        assert cache.stats.stores == 0

    def test_sweep_level_caching_through_the_context(self):
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        backend = SerialBackend()
        with use_runtime(backend=backend, cache=ResultCache()):
            first = noise_sweep(workload, algorithm_a(), multipliers=(0.5, 1.0), trials=2)
            executed = backend.trials_executed
            second = noise_sweep(workload, algorithm_a(), multipliers=(0.5, 1.0), trials=2)
        assert backend.trials_executed == executed
        assert first == second


class TestRunStore:
    def test_trial_set_round_trip(self, tmp_path):
        """persist → list → load equals the original, field for field."""
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        scheme = algorithm_a()
        store = RunStore(tmp_path)
        trial_set = run_trials(workload, scheme, adversary_factory=RandomNoiseFactory(0.004),
                               trials=3, cache=None, store=store)

        summaries = store.list_runs()
        assert len(summaries) == 1
        assert summaries[0]["kind"] == "trial_set"
        assert summaries[0]["trials"] == 3

        stored = store.load_trial_set(summaries[0]["run_id"])
        assert stored.label == trial_set.label
        assert stored.runs == trial_set.runs
        assert stored.aggregate == trial_set.aggregate

    def test_run_ids_are_monotonic(self, tmp_path):
        store = RunStore(tmp_path)
        workload = pairwise_workload()
        ids = [
            run_trials(workload, crs_oblivious_scheme(), trials=1, cache=None, store=store)
            and store.list_runs()[-1]["run_id"]
            for _ in range(3)
        ]
        assert ids == sorted(ids) and len(set(ids)) == 3

    def test_unknown_run_id_raises(self, tmp_path):
        with pytest.raises(KeyError):
            RunStore(tmp_path).load("run-999999")

    def test_unknown_schema_raises(self, tmp_path):
        store = RunStore(tmp_path)
        (tmp_path / "run-000001.json").write_text(json.dumps({"schema": 999, "run_id": "run-000001"}))
        with pytest.raises(ValueError):
            store.load("run-000001")

    def test_query_filters(self, tmp_path):
        store = RunStore(tmp_path)
        workload = pairwise_workload()
        run_trials(workload, crs_oblivious_scheme(), trials=1, cache=None, store=store)
        assert store.query(kind="trial_set")
        assert not store.query(kind="report")
        assert store.query(label_contains="pairwise")
        assert not store.query(label_contains="nonexistent")


class TestMetricsPayloadRoundTrip:
    def test_run_metrics_round_trip_is_lossless(self):
        metrics = RunMetrics(
            scheme="algorithm_a", success=True, protocol_communication=10,
            simulation_communication=100, corruptions=2, noise_fraction=0.02,
            iterations_run=5, iterations_budget=9,
            communication_by_phase={"simulation": 80, "meeting_points": 20},
            corruptions_by_phase={"simulation": 2}, meeting_point_truncations=1,
            rewinds_sent=3, hash_mismatches_detected=1, hash_collisions_observed=0,
            randomness_exchange_failures=0,
        )
        assert RunMetrics.from_payload(json.loads(json.dumps(metrics.to_payload()))) == metrics

    def test_aggregate_metrics_round_trip_is_lossless(self):
        aggregate = AggregateMetrics(
            scheme="algorithm_b", trials=4, successes=3, mean_overhead=41.5,
            mean_noise_fraction=0.003, mean_corruptions=1.25,
        )
        assert AggregateMetrics.from_payload(json.loads(json.dumps(aggregate.to_payload()))) == aggregate

    def test_unknown_payload_keys_are_ignored(self):
        payload = AggregateMetrics("x", 1, 1, 1.0, 0.0, 0.0).to_payload()
        payload["added_in_a_future_version"] = True
        assert AggregateMetrics.from_payload(payload).scheme == "x"


class TestRuntimeContext:
    def test_default_context_is_serial_and_uncached(self):
        context = get_runtime()
        assert context.backend.name == "serial"
        assert context.cache is None
        assert context.store is None

    def test_use_runtime_restores_on_exit(self):
        before = get_runtime()
        with use_runtime(backend=ProcessPoolBackend(max_workers=2), cache=ResultCache()):
            inside = get_runtime()
            assert inside.backend.name == "process-pool"
            assert inside.cache is not None
        assert get_runtime() is before

    def test_explicit_arguments_beat_the_context(self):
        workload = pairwise_workload()
        explicit = SerialBackend()
        ambient = SerialBackend()
        with use_runtime(backend=ambient):
            run_trials(workload, crs_oblivious_scheme(), trials=1, backend=explicit, cache=None)
        assert explicit.trials_executed == 1
        assert ambient.trials_executed == 0


class TestRunsCli:
    def test_experiment_store_and_runs_listing(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "runs"
        code = main([
            "noise-sweep", "--topology", "line", "--nodes", "4", "--phases", "4",
            "--multipliers", "0.5", "--trials", "1",
            "--store-dir", str(store_dir), "--seed", "11",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed: 11" in out
        assert "run persisted as" in out

        assert main(["runs", "list", "--store-dir", str(store_dir)]) == 0
        listing = capsys.readouterr().out
        assert "trial_set" in listing and "report" in listing

        run_id = RunStore(store_dir).list_runs()[0]["run_id"]
        assert main(["runs", "show", run_id, "--store-dir", str(store_dir)]) == 0
        shown = capsys.readouterr().out
        assert run_id in shown

    def test_jobs_and_cache_flags_produce_identical_reports(self, tmp_path, capsys):
        from repro.cli import main

        args = ["noise-sweep", "--topology", "line", "--nodes", "4", "--phases", "4",
                "--multipliers", "0.5", "4.0", "--trials", "2", "--seed", "3",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_every_experiment_command_prints_the_seed(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--workload", "pairwise", "--nodes", "4",
                     "--noise", "0.0", "--seed", "9"]) == 0
        assert "seed: 9" in capsys.readouterr().out
        assert main(["ablations", "--which", "chunk_size", "--trials", "1", "--seed", "4"]) == 0
        assert "seed: 4" in capsys.readouterr().out


class TestRunStoreIndex:
    """list/resolve are served from index.json; the index heals itself."""

    def _store_with_runs(self, tmp_path, count=3):
        store = RunStore(tmp_path)
        workload = pairwise_workload()
        for _ in range(count):
            run_trials(workload, crs_oblivious_scheme(), trials=1, cache=None, store=store)
        return store

    def test_index_file_is_maintained_on_write(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=2)
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["schema"] == 1
        assert set(index["runs"]) == {row["run_id"] for row in store.list_runs()}

    def test_listing_is_served_from_the_index_without_reading_documents(self, tmp_path):
        """With a fresh index, list_runs stats the run files but never parses
        them — proven by replacing every document with same-sized garbage
        (mtime restored) and still getting the indexed summaries back."""
        import os

        store = self._store_with_runs(tmp_path, count=2)
        expected = store.list_runs()
        for path in tmp_path.glob("run-*.json"):
            stat = path.stat()
            path.write_bytes(b"#" * stat.st_size)  # same size, unparseable
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.list_runs() == expected

    def test_hand_deleted_run_file_heals_on_next_list(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=3)
        victim = store.list_runs()[0]["run_id"]
        (tmp_path / f"{victim}.json").unlink()  # behind the store's back
        listed = {row["run_id"] for row in store.list_runs()}
        assert victim not in listed
        assert len(listed) == 2

    def test_hand_edited_run_file_heals_on_next_list(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=2)
        target = store.list_runs()[0]["run_id"]
        path = tmp_path / f"{target}.json"
        payload = json.loads(path.read_text())
        payload["label"] = "edited-behind-the-stores-back"
        path.write_text(json.dumps(payload))
        labels = {row["run_id"]: row["label"] for row in store.list_runs()}
        assert labels[target] == "edited-behind-the-stores-back"

    def test_deleted_index_is_rebuilt(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=2)
        before = store.list_runs()
        (tmp_path / "index.json").unlink()
        assert store.list_runs() == before
        assert (tmp_path / "index.json").exists()

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        store = self._store_with_runs(tmp_path, count=2)
        before = store.list_runs()
        (tmp_path / "index.json").write_text("} definitely not json {")
        assert store.list_runs() == before

    def test_concurrent_writers_never_overwrite_each_other(self, tmp_path):
        """Two store handles on the same directory interleave run ids instead
        of clobbering (the exclusive hard-link claim)."""
        first, second = RunStore(tmp_path), RunStore(tmp_path)
        workload = pairwise_workload()
        ids = []
        for store in (first, second, first, second):
            run_trials(workload, crs_oblivious_scheme(), trials=1, cache=None, store=store)
            ids.append(store.list_runs()[-1]["run_id"])
        assert len(set(ids)) == 4
        assert {row["run_id"] for row in first.list_runs()} == set(ids)

    def test_listing_a_nonexistent_store_creates_nothing(self, tmp_path):
        root = tmp_path / "never-created"
        assert RunStore(root).list_runs() == []
        assert not root.exists()


class TestCacheCompaction:
    def _warm_disk_cache(self, tmp_path, trials=3):
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        run_trials(workload, algorithm_a(), adversary_factory=RandomNoiseFactory(0.004),
                   trials=trials, cache=ResultCache(tmp_path))
        return tmp_path / "trials.jsonl"

    def test_compact_folds_duplicate_keys_to_the_latest_line(self, tmp_path):
        path = self._warm_disk_cache(tmp_path)
        original_lines = path.read_text().strip().splitlines()
        # Re-append every line (simulating re-stores of the same keys) …
        with path.open("a") as handle:
            for line in original_lines:
                handle.write(line + "\n")
        cache = ResultCache(tmp_path)
        result = cache.compact()
        assert result["kept"] == len(original_lines)
        assert result["dropped_superseded"] == len(original_lines)
        assert result["dropped_invalid"] == 0
        # … and the compacted file still serves every trial.
        assert len(ResultCache(tmp_path)) == len(original_lines)

    def test_compact_drops_version_mismatched_and_corrupt_lines(self, tmp_path):
        path = self._warm_disk_cache(tmp_path)
        keep = len(path.read_text().strip().splitlines())
        with path.open("a") as handle:
            handle.write('{"schema": 999, "key": "stale", "metrics": {}}\n')
            handle.write("not json at all\n")
        result = ResultCache(tmp_path).compact()
        assert result["kept"] == keep
        assert result["dropped_invalid"] == 2
        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == keep

    def test_compact_treats_a_truncated_final_line_as_invalid(self, tmp_path):
        """A crash mid-append leaves a final line without its newline; compact
        drops it (exactly what load() would do) without touching valid lines."""
        path = self._warm_disk_cache(tmp_path)
        keep = len(path.read_text().strip().splitlines())
        with path.open("a") as handle:
            handle.write('{"schema": 1, "key": "trunc')  # no newline, no close
        result = ResultCache(tmp_path).compact()
        assert result["kept"] == keep
        assert result["dropped_invalid"] == 1
        assert len(ResultCache(tmp_path)) == keep

    def test_compact_requires_a_disk_backed_cache(self):
        with pytest.raises(ValueError):
            ResultCache().compact()

    def test_compact_of_an_empty_cache_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache._path.unlink(missing_ok=True)
        result = cache.compact()
        assert result == {"kept": 0, "dropped_superseded": 0, "dropped_invalid": 0}

    def test_cli_cache_compact(self, tmp_path, capsys):
        from repro.cli import main

        self._warm_disk_cache(tmp_path)
        assert main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        assert "compacted" in capsys.readouterr().out
