"""Smoke test for ``scripts/profile_hotpath.py``.

The profiler is the first tool every perf-minded PR reaches for, so it must
not rot: this runs it end to end on a tiny trial (both transport paths) and
asserts it exits cleanly and actually prints the top-frame table.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "profile_hotpath.py"

_TINY_TRIAL = ["--phases", "2", "--nodes", "4", "--top", "5"]


def _run(extra_args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *_TINY_TRIAL, *extra_args],
        capture_output=True,
        text=True,
        timeout=180,
        env=dict(os.environ),
        cwd=str(REPO_ROOT),
    )


@pytest.mark.smoke
def test_profile_hotpath_prints_top_frames():
    result = _run([])
    assert result.returncode == 0, result.stderr
    assert "packed transport" in result.stdout
    assert "trial:" in result.stdout
    assert "cumulative time" in result.stdout  # the pstats header
    assert "engine.py" in result.stdout  # at least one repo frame in the table


@pytest.mark.smoke
def test_profile_hotpath_per_slot_path():
    result = _run(["--per-slot", "--sort", "tottime"])
    assert result.returncode == 0, result.stderr
    assert "per-slot transport" in result.stdout
    assert "tottime" in result.stdout


@pytest.mark.smoke
def test_profile_hotpath_no_packed_path():
    result = _run(["--no-packed"])
    assert result.returncode == 0, result.stderr
    assert "batched transport" in result.stdout


@pytest.mark.smoke
def test_profile_hotpath_compare_mode():
    result = _run(["--compare"])
    assert result.returncode == 0, result.stderr
    assert "default   (packed fast paths):" in result.stdout
    assert "reference (everything off):" in result.stdout
    assert "speedup:" in result.stdout
    assert "bit-identical results: True" in result.stdout


@pytest.mark.smoke
def test_profile_hotpath_forensics():
    result = _run(["--forensics"])
    assert result.returncode == 0, result.stderr
    assert "flight recorder:" in result.stdout
    assert "events recorded:" in result.stdout
    assert "verdict:" in result.stdout
    # A noisy trial records the event kinds the recorder exists to capture.
    assert "corruption" in result.stdout
    assert "potential" in result.stdout
