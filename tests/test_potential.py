"""Tests for the potential-function instrumentation (§4.1 quantities)."""

from __future__ import annotations


from repro.analysis.potential import (
    PotentialTrace,
    compute_snapshot,
    link_agreement,
    link_divergence,
)
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.network.topologies import line_topology


def _transcript(owner, neighbor, payloads):
    transcript = LinkTranscript(owner, neighbor)
    for index, payload in enumerate(payloads, start=1):
        transcript.append(ChunkRecord(chunk_index=index, link_view=(payload,)))
    return transcript


def _line3_transcripts(values_01, values_10, values_12, values_21):
    return {
        (0, 1): _transcript(0, 1, values_01),
        (1, 0): _transcript(1, 0, values_10),
        (1, 2): _transcript(1, 2, values_12),
        (2, 1): _transcript(2, 1, values_21),
    }


class TestLinkQuantities:
    def test_agreement_and_divergence_equal_transcripts(self):
        transcripts = _line3_transcripts([1, 0], [1, 0], [1], [1])
        assert link_agreement(transcripts, 0, 1) == 2
        assert link_divergence(transcripts, 0, 1) == 0

    def test_divergence_counts_longest_side(self):
        transcripts = _line3_transcripts([1, 0, 1, 1], [1, 0], [1], [1])
        assert link_agreement(transcripts, 0, 1) == 2
        assert link_divergence(transcripts, 0, 1) == 2

    def test_disagreeing_prefix(self):
        transcripts = _line3_transcripts([1, 0], [0, 0], [1], [1])
        assert link_agreement(transcripts, 0, 1) == 0
        assert link_divergence(transcripts, 0, 1) == 2


class TestSnapshot:
    def test_global_quantities(self):
        graph = line_topology(3)
        transcripts = _line3_transcripts([1, 0, 1], [1, 0, 1], [1], [1])
        snapshot = compute_snapshot(graph, transcripts, iteration=4, scale_k=2)
        assert snapshot.global_agreement == 1     # min over links
        assert snapshot.global_longest == 3
        assert snapshot.global_divergence == 2
        assert snapshot.iteration == 4
        data = snapshot.as_dict()
        assert data["G_star"] == 1 and data["B_star"] == 2

    def test_simplified_potential_increases_with_agreement(self):
        graph = line_topology(3)
        behind = compute_snapshot(graph, _line3_transcripts([1], [1], [1], [1]), 0, scale_k=2)
        ahead = compute_snapshot(graph, _line3_transcripts([1, 0], [1, 0], [1, 0], [1, 0]), 1, scale_k=2)
        assert ahead.simplified_potential > behind.simplified_potential

    def test_divergence_lowers_potential(self):
        graph = line_topology(3)
        clean = compute_snapshot(graph, _line3_transcripts([1, 0], [1, 0], [1, 0], [1, 0]), 0, scale_k=2)
        diverged = compute_snapshot(graph, _line3_transcripts([1, 1], [1, 0], [1, 0], [1, 0]), 0, scale_k=2)
        assert diverged.simplified_potential < clean.simplified_potential


class TestTrace:
    def test_series_and_monotonicity(self):
        graph = line_topology(3)
        trace = PotentialTrace()
        for step in range(3):
            payload = [1] * (step + 1)
            trace.record(
                compute_snapshot(graph, _line3_transcripts(payload, payload, payload, payload), step, 2)
            )
        assert len(trace) == 3
        assert trace.series("G_star") == [1, 2, 3]
        assert trace.is_monotone_nondecreasing("G_star")
        assert trace.is_monotone_nondecreasing("phi")

    def test_non_monotone_detected(self):
        graph = line_topology(3)
        trace = PotentialTrace()
        long = _line3_transcripts([1, 1], [1, 1], [1, 1], [1, 1])
        short = _line3_transcripts([1], [1], [1], [1])
        trace.record(compute_snapshot(graph, long, 0, 2))
        trace.record(compute_snapshot(graph, short, 1, 2))
        assert not trace.is_monotone_nondecreasing("G_star")
