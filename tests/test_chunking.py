"""Tests for the chunk decomposition of Π."""

from __future__ import annotations

import pytest

from repro.core.chunking import ChunkedProtocol
from repro.network.topologies import line_topology
from repro.protocols.aggregation import AggregationProtocol
from repro.protocols.gossip import ParityGossipProtocol


@pytest.fixture
def chunked_gossip(gossip_clique4):
    return ChunkedProtocol(gossip_clique4, chunk_budget=24, padding_chunks=2)


class TestChunkBoundaries:
    def test_chunk_budget_respected(self, chunked_gossip):
        for chunk in chunked_gossip.chunks:
            if not chunk.is_padding:
                assert chunked_gossip.chunk_bits(chunk.index) <= chunked_gossip.chunk_budget

    def test_every_round_appears_exactly_once(self, chunked_gossip):
        rounds = [r for chunk in chunked_gossip.chunks for r in chunk.round_indices]
        assert rounds == list(range(chunked_gossip.protocol.num_rounds))

    def test_chunk_indices_are_one_based_and_consecutive(self, chunked_gossip):
        assert [chunk.index for chunk in chunked_gossip.chunks] == list(
            range(1, len(chunked_gossip.chunks) + 1)
        )

    def test_padding_chunks_appended(self, chunked_gossip):
        padding = [chunk for chunk in chunked_gossip.chunks if chunk.is_padding]
        assert len(padding) == 2
        assert all(chunk.num_rounds == 0 for chunk in padding)

    def test_real_chunk_count(self, chunked_gossip):
        # gossip over K4: 12 bits per phase, 5 phases = 60 bits, budget 24 -> 3 chunks
        assert chunked_gossip.num_real_chunks == 3

    def test_chunk_budget_validation(self, gossip_clique4):
        with pytest.raises(ValueError):
            ChunkedProtocol(gossip_clique4, chunk_budget=0)
        with pytest.raises(ValueError):
            ChunkedProtocol(gossip_clique4, chunk_budget=10, padding_chunks=-1)

    def test_silent_protocol_still_has_a_chunk(self):
        graph = line_topology(3)
        protocol = ParityGossipProtocol(graph, {i: 0 for i in range(3)}, phases=1)
        chunked = ChunkedProtocol(protocol, chunk_budget=1000, padding_chunks=0)
        assert chunked.num_real_chunks == 1


class TestChunkQueries:
    def test_chunk_lookup_and_synthesised_padding(self, chunked_gossip):
        total = chunked_gossip.num_chunks
        beyond = chunked_gossip.chunk(total + 5)
        assert beyond.is_padding
        assert beyond.num_rounds == 0
        with pytest.raises(ValueError):
            chunked_gossip.chunk(0)

    def test_chunk_round_links_match_schedule(self, chunked_gossip):
        schedule = chunked_gossip.protocol.schedule()
        chunk = chunked_gossip.chunks[0]
        per_round = chunked_gossip.chunk_round_links(chunk.index)
        for offset, round_index in enumerate(chunk.round_indices):
            assert per_round[offset] == schedule[round_index]

    def test_link_slots_cover_all_transmissions(self, chunked_gossip):
        chunk = chunked_gossip.chunks[0]
        total_slots = 0
        for u, v in chunked_gossip.graph.edges:
            slots = chunked_gossip.link_slots(chunk.index, u, v)
            total_slots += len(slots)
            for slot in slots:
                assert {slot.sender, slot.receiver} == {u, v}
        assert total_slots == chunked_gossip.chunk_bits(chunk.index)

    def test_link_slots_symmetric_in_arguments(self, chunked_gossip):
        chunk = chunked_gossip.chunks[0]
        assert chunked_gossip.link_slots(chunk.index, 0, 1) == chunked_gossip.link_slots(chunk.index, 1, 0)

    def test_max_chunk_rounds(self, chunked_gossip):
        assert chunked_gossip.max_chunk_rounds() == max(
            chunk.num_rounds for chunk in chunked_gossip.chunks
        )

    def test_communication_complexity_passthrough(self, chunked_gossip):
        assert chunked_gossip.communication_complexity() == chunked_gossip.protocol.communication_complexity()


class TestSparseProtocolChunking:
    def test_aggregation_chunks(self):
        graph = line_topology(5)
        protocol = AggregationProtocol(graph, {i: 1 for i in range(5)}, value_bits=4)
        chunked = ChunkedProtocol(protocol, chunk_budget=8, padding_chunks=1)
        # 8 tree edges * 4 bits... line of 5 has 4 tree edges -> 4*4*2 = 32 bits total
        assert chunked.num_real_chunks == 4
        # in a sparse protocol every chunk has as many rounds as bits
        for chunk in chunked.chunks:
            if not chunk.is_padding:
                assert chunk.num_rounds == chunked.chunk_bits(chunk.index)
