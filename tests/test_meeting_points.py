"""Tests for the meeting-points mechanism (consistency-check phase)."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.core.meeting_points import STATUS_MEETING_POINTS, STATUS_SIMULATE, MeetingPointsSession
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.hashing.inner_product import InnerProductHash
from repro.hashing.seeds import CrsSeedSource


def _record(index: int, payload: int) -> ChunkRecord:
    return ChunkRecord(chunk_index=index, link_view=(payload & 1, (payload >> 1) & 1))


def _transcript(owner: int, neighbor: int, payloads: List[int]) -> LinkTranscript:
    transcript = LinkTranscript(owner, neighbor)
    for index, payload in enumerate(payloads, start=1):
        transcript.append(_record(index, payload))
    return transcript


def _session_pair(tau: int = 10, master_seed: int = 99) -> Tuple[MeetingPointsSession, MeetingPointsSession]:
    hasher = InnerProductHash(tau)
    seed_u = CrsSeedSource(master_seed=master_seed, link=(0, 1))
    seed_v = CrsSeedSource(master_seed=master_seed, link=(0, 1))
    return (
        MeetingPointsSession(hasher=hasher, seed_source=seed_u),
        MeetingPointsSession(hasher=hasher, seed_source=seed_v),
    )


def _exchange(
    session_u: MeetingPointsSession,
    session_v: MeetingPointsSession,
    transcript_u: LinkTranscript,
    transcript_v: LinkTranscript,
    iteration: int,
):
    """One noiseless consistency-check exchange between the two endpoints."""
    message_u = session_u.build_message(iteration, transcript_u)
    message_v = session_v.build_message(iteration, transcript_v)
    outcome_u = session_u.process_reply(iteration, transcript_u, message_v)
    outcome_v = session_v.process_reply(iteration, transcript_v, message_u)
    if outcome_u.truncate_to is not None:
        transcript_u.truncate_to(outcome_u.truncate_to)
    if outcome_v.truncate_to is not None:
        transcript_v.truncate_to(outcome_v.truncate_to)
    return outcome_u, outcome_v


def _run_until_consistent(transcript_u, transcript_v, max_phases=64, tau=12):
    session_u, session_v = _session_pair(tau=tau)
    for iteration in range(max_phases):
        outcome_u, outcome_v = _exchange(session_u, session_v, transcript_u, transcript_v, iteration)
        if outcome_u.status == STATUS_SIMULATE and outcome_v.status == STATUS_SIMULATE:
            return iteration + 1
    return None


class TestMessageLayout:
    def test_message_length(self):
        session, _ = _session_pair(tau=7)
        transcript = _transcript(0, 1, [1, 2])
        message = session.build_message(0, transcript)
        assert len(message) == 4 * 7 == session.message_bits

    def test_counter_advances(self):
        session, _ = _session_pair()
        transcript = _transcript(0, 1, [1])
        session.build_message(0, transcript)
        assert session.k == 1
        session.build_message(1, transcript)
        assert session.k == 2


class TestAgreement:
    def test_equal_transcripts_simulate_immediately(self):
        transcript_u = _transcript(0, 1, [1, 2, 3])
        transcript_v = _transcript(1, 0, [1, 2, 3])
        session_u, session_v = _session_pair()
        outcome_u, outcome_v = _exchange(session_u, session_v, transcript_u, transcript_v, 0)
        assert outcome_u.status == STATUS_SIMULATE
        assert outcome_v.status == STATUS_SIMULATE
        assert outcome_u.full_match and outcome_v.full_match
        assert len(transcript_u) == 3 and len(transcript_v) == 3

    def test_empty_transcripts_agree(self):
        transcript_u = LinkTranscript(0, 1)
        transcript_v = LinkTranscript(1, 0)
        session_u, session_v = _session_pair()
        outcome_u, outcome_v = _exchange(session_u, session_v, transcript_u, transcript_v, 0)
        assert outcome_u.status == STATUS_SIMULATE
        assert outcome_v.status == STATUS_SIMULATE

    def test_mismatch_detected(self):
        transcript_u = _transcript(0, 1, [1, 2, 3])
        transcript_v = _transcript(1, 0, [1, 2, 0])
        session_u, session_v = _session_pair()
        outcome_u, outcome_v = _exchange(session_u, session_v, transcript_u, transcript_v, 0)
        assert outcome_u.status == STATUS_MEETING_POINTS
        assert outcome_v.status == STATUS_MEETING_POINTS


class TestConvergence:
    @pytest.mark.parametrize(
        "payload_u,payload_v",
        [
            ([1, 2, 3], [1, 2, 0]),          # one divergent chunk
            ([1, 2, 3, 0], [1, 2]),          # one side two chunks ahead
            ([1, 2, 3, 1, 2], [1, 2, 3]),    # prefix relationship
            ([1, 2, 3, 1], [1, 2, 0, 0]),    # divergence in the middle
            ([1], []),                       # single chunk vs empty
            ([1, 2, 3, 0, 2, 3, 1], [1, 0]), # large imbalance
        ],
    )
    def test_divergent_transcripts_reconverge(self, payload_u, payload_v):
        transcript_u = _transcript(0, 1, payload_u)
        transcript_v = _transcript(1, 0, payload_v)
        phases = _run_until_consistent(transcript_u, transcript_v)
        assert phases is not None, "meeting points never converged"
        # after convergence the transcripts must be identical and a prefix of
        # the original common prefix
        assert len(transcript_u) == len(transcript_v)
        assert transcript_u.matches_prefix(transcript_v)

    def test_convergence_is_quick_for_small_divergence(self):
        transcript_u = _transcript(0, 1, [1, 2, 3, 0])
        transcript_v = _transcript(1, 0, [1, 2, 3, 1])
        phases = _run_until_consistent(transcript_u, transcript_v)
        assert phases is not None and phases <= 6

    def test_truncation_does_not_overshoot_too_much(self):
        common = [1, 2, 3, 0, 1, 2, 3, 0]
        transcript_u = _transcript(0, 1, common + [1])
        transcript_v = _transcript(1, 0, common + [2])
        _run_until_consistent(transcript_u, transcript_v)
        # divergence B = 1; the final length must not be rolled back by more
        # than O(B) chunks past the common prefix (here: at most 2 chunks).
        assert len(transcript_u) >= len(common) - 2


class TestCounterResynchronisation:
    def test_desynchronised_counters_recover(self):
        """If one side's k drifted (e.g. after corrupted exchanges), both resync."""
        transcript_u = _transcript(0, 1, [1, 2])
        transcript_v = _transcript(1, 0, [1, 2])
        session_u, session_v = _session_pair()
        # Artificially desynchronise the counters.
        session_u.k = 5
        outcome_u, outcome_v = _exchange(session_u, session_v, transcript_u, transcript_v, 0)
        # They cannot agree this phase, but within two more phases they must.
        for iteration in range(1, 4):
            outcome_u, outcome_v = _exchange(session_u, session_v, transcript_u, transcript_v, iteration)
            if outcome_u.status == STATUS_SIMULATE and outcome_v.status == STATUS_SIMULATE:
                break
        assert outcome_u.status == STATUS_SIMULATE
        assert outcome_v.status == STATUS_SIMULATE


class TestNoiseHandling:
    def test_corrupted_reply_counts_as_mismatch(self):
        transcript_u = _transcript(0, 1, [1, 2])
        transcript_v = _transcript(1, 0, [1, 2])
        session_u, session_v = _session_pair()
        message_v = session_v.build_message(0, transcript_v)
        session_u.build_message(0, transcript_u)
        corrupted = [None] * len(message_v)
        outcome_u = session_u.process_reply(0, transcript_u, corrupted)
        assert outcome_u.status == STATUS_MEETING_POINTS

    def test_partial_reply_is_tolerated(self):
        transcript_u = _transcript(0, 1, [1, 2])
        session_u, _ = _session_pair()
        session_u.build_message(0, transcript_u)
        outcome = session_u.process_reply(0, transcript_u, [0, 1])  # far too short
        assert outcome.status == STATUS_MEETING_POINTS

    def test_hash_collision_accounting_is_possible(self):
        """With a 1-bit hash, distinct transcripts sometimes look equal (a collision)."""
        collisions = 0
        for master_seed in range(40):
            hasher = InnerProductHash(1)
            session_u = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
            session_v = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
            transcript_u = _transcript(0, 1, [1, 2, 3])
            transcript_v = _transcript(1, 0, [1, 2, 0])
            outcome_u, _ = _exchange(session_u, session_v, transcript_u, transcript_v, 0)
            if outcome_u.full_match:
                collisions += 1
        # Expected collision rate is about 1/2 per the 1-bit hash; require that
        # collisions are neither impossible nor certain.
        assert 0 < collisions < 40
