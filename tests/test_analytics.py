"""Tests for the run-analytics layer: diff, merge, gc, fingerprint memo, CLI.

The guarantees pinned here:

1. ``diff_runs`` reports per-cell success-rate and wall-clock deltas,
   classifies them against the thresholds, and treats disjoint cells as
   informative rather than as regressions;
2. ``merge_runs`` unions trial sets of the same cell (deduplicating shared
   seeds) and refuses non-trial-set inputs and schema-mismatched documents;
3. ``gc_runs`` never deletes the latest run of any experiment, whatever the
   age/count pressure;
4. fingerprint memoization changes timings, never digests;
5. the ``repro runs`` CLI surfaces all of it with friendly errors and the
   exit codes CI needs (1 on regression, 1 on unreadable/missing runs).
"""

from __future__ import annotations

import json
import threading
from datetime import datetime, timedelta, timezone

import pytest

from repro.analysis.metrics import RunMetrics, summarize_runs
from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.workloads import gossip_workload
from repro.runtime import (
    RegressionThresholds,
    RunStore,
    TrialSpec,
    bench_env_name,
    canonical_payload,
    clear_payload_memo,
    diff_runs,
    fingerprint_trial,
    gc_runs,
    memoized_payload,
    merge_runs,
    payload_memo_stats,
)


def _metrics(success: bool = True, cc_simulation: int = 100) -> RunMetrics:
    return RunMetrics(
        scheme="algorithm_a",
        success=success,
        protocol_communication=10,
        simulation_communication=cc_simulation,
        corruptions=0,
        noise_fraction=0.0,
        iterations_run=1,
        iterations_budget=2,
    )


def _record_cell(
    store: RunStore,
    label: str = "cell-a",
    successes=(True, True),
    seeds=None,
    wall_clock: float = None,
    experiment: str = "run_trials",
) -> str:
    runs = [_metrics(success=flag) for flag in successes]
    seeds = list(seeds) if seeds is not None else list(range(len(runs)))
    return store.record_trial_set(
        label=label,
        runs=runs,
        aggregate=summarize_runs(runs),
        experiment=experiment,
        parameters={"scheme": "algorithm_a", "workload": label, "seeds": seeds},
        wall_clock_seconds=wall_clock,
    )


class TestDiffRuns:
    def test_success_rate_drop_is_a_regression(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, successes=(True, True), wall_clock=1.0)
        b = _record_cell(store, successes=(True, False), wall_clock=1.0)
        diff = diff_runs(store.load(a), store.load(b))
        assert diff.has_regression
        (regression,) = diff.regressions
        assert regression.metric == "success_rate"
        assert regression.baseline == 1.0 and regression.candidate == 0.5

    def test_success_drop_within_tolerance_is_ok(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, successes=(True, True))
        b = _record_cell(store, successes=(True, False))
        thresholds = RegressionThresholds(max_success_rate_drop=0.5)
        assert not diff_runs(store.load(a), store.load(b), thresholds).has_regression

    def test_wall_clock_ratio_gates_on_threshold(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, wall_clock=1.0)
        b = _record_cell(store, wall_clock=1.5)
        tight = diff_runs(store.load(a), store.load(b), RegressionThresholds(max_wall_clock_increase=0.25))
        assert [row.metric for row in tight.regressions] == ["wall_clock_seconds"]
        loose = diff_runs(store.load(a), store.load(b), RegressionThresholds(max_wall_clock_increase=0.6))
        assert not loose.has_regression

    def test_sub_floor_wall_clocks_never_gate(self, tmp_path):
        """Scheduler jitter dominates sub-millisecond cells; the absolute
        floor keeps them from flaking the CI gate."""
        store = RunStore(tmp_path)
        a = store.record_bench([{"name": "tiny", "mean_seconds": 0.001}])
        b = store.record_bench([{"name": "tiny", "mean_seconds": 0.004}])  # 4x, but tiny
        assert not diff_runs(store.load(a), store.load(b)).has_regression
        floored = diff_runs(
            store.load(a), store.load(b), RegressionThresholds(min_wall_clock_seconds=0.0)
        )
        assert floored.has_regression

    def test_faster_candidate_is_an_improvement(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, wall_clock=2.0)
        b = _record_cell(store, wall_clock=1.0)
        diff = diff_runs(store.load(a), store.load(b))
        statuses = {row.metric: row.status for row in diff.rows}
        assert statuses["wall_clock_seconds"] == "improved"
        assert not diff.has_regression

    def test_disjoint_cells_are_reported_but_never_regress(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, label="cell-a")
        b = _record_cell(store, label="cell-b")
        diff = diff_runs(store.load(a), store.load(b))
        assert {row.status for row in diff.rows} == {"only-baseline", "only-candidate"}
        assert not diff.has_regression

    def test_missing_wall_clock_on_one_side_is_tolerated(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, wall_clock=None)  # e.g. written by an older build
        b = _record_cell(store, wall_clock=1.0)
        diff = diff_runs(store.load(a), store.load(b))
        assert not diff.has_regression

    def test_cache_served_runs_never_gate_on_wall_clock(self, tmp_path):
        """A warm result cache makes the wall clock measure cache state, not
        build speed — it must not fake (baseline warm) or mask (candidate
        warm) a regression."""
        store = RunStore(tmp_path)
        runs = [_metrics(), _metrics()]

        def record(wall_clock, cached_trials):
            return store.record_trial_set(
                label="cell-a", runs=runs, aggregate=summarize_runs(runs),
                parameters={"seeds": [1, 2]},
                wall_clock_seconds=wall_clock, cached_trials=cached_trials,
            )

        warm_baseline = record(0.05, cached_trials=2)
        cold_candidate = record(10.0, cached_trials=0)
        assert not diff_runs(store.load(warm_baseline), store.load(cold_candidate)).has_regression
        cold_a = record(1.0, cached_trials=0)
        cold_b = record(10.0, cached_trials=0)
        assert diff_runs(store.load(cold_a), store.load(cold_b)).has_regression

    def test_kind_mismatch_is_refused(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        b = store.record_bench([{"name": "bench_x", "mean_seconds": 0.1}])
        with pytest.raises(ValueError, match="cannot diff"):
            diff_runs(store.load(a), store.load(b))

    def test_bench_runs_diff_by_benchmark_name(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.record_bench(
            [
                {"name": "bench_x", "fullname": "f.py::bench_x", "mean_seconds": 0.10},
                {"name": "bench_y", "fullname": "f.py::bench_y", "mean_seconds": 0.20},
            ]
        )
        b = store.record_bench(
            [
                {"name": "bench_x", "fullname": "f.py::bench_x", "mean_seconds": 0.30},
                {"name": "bench_y", "fullname": "f.py::bench_y", "mean_seconds": 0.21},
            ]
        )
        diff = diff_runs(store.load(a), store.load(b), RegressionThresholds(max_wall_clock_increase=0.25))
        assert [row.cell for row in diff.regressions] == ["f.py::bench_x"]

    def test_bench_record_carries_env_style_export(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = store.record_bench([{"name": "test_noise sweep", "mean_seconds": 0.5}])
        payload = store.load(run_id)
        assert payload["bench_env"] == {"BENCH_TEST_NOISE_SWEEP": 0.5}
        assert bench_env_name("a-b.c") == "BENCH_A_B_C"


class TestMergeRuns:
    def test_merge_unions_trials_and_dedupes_shared_seeds(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, successes=(True, True), seeds=[17, 1017])
        b = _record_cell(store, successes=(True, False), seeds=[1017, 2017])
        result = merge_runs(store, [a, b])
        assert result.skipped == []
        (merged_id,) = result.created
        merged = store.load_trial_set(merged_id)
        # 17, 1017 from a; 1017 deduplicated; 2017 from b.
        assert merged.parameters["seeds"] == [17, 1017, 2017]
        assert merged.aggregate.trials == 3
        assert merged.parameters["merged_from"] == [a, b]

    def test_merged_aggregate_is_recomputed(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, successes=(True, True), seeds=[1, 2])
        b = _record_cell(store, successes=(False, False), seeds=[3, 4])
        (merged_id,) = merge_runs(store, [a, b]).created
        merged = store.load_trial_set(merged_id)
        assert merged.aggregate.trials == 4
        assert merged.aggregate.success_rate == 0.5

    def test_distinct_cells_are_skipped_not_mixed(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store, label="cell-a")
        b = _record_cell(store, label="cell-b")
        result = merge_runs(store, [a, b])
        assert result.created == []
        assert sorted(result.skipped) == sorted([a, b])

    def test_schema_mismatch_is_refused(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        (tmp_path / "run-000999.json").write_text(
            json.dumps({"schema": 999, "run_id": "run-000999", "kind": "trial_set"})
        )
        with pytest.raises(ValueError, match="schema"):
            merge_runs(store, [a, "run-000999"])

    def test_duplicate_run_ids_collapse_to_one_sample(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        with pytest.raises(ValueError, match="distinct"):
            merge_runs(store, [a, a])

    def test_same_label_different_cell_is_never_mixed(self, tmp_path):
        """A shared custom label must not let different scheme/workload cells
        merge into one corrupt record."""
        store = RunStore(tmp_path)
        runs = [_metrics()]
        ids = [
            store.record_trial_set(
                label="exp", runs=runs, aggregate=summarize_runs(runs),
                experiment="run_trials",
                parameters={"scheme": scheme, "workload": workload, "seeds": [1]},
            )
            for scheme, workload in [("algorithm_a", "w1"), ("algorithm_b", "w2")]
        ]
        result = merge_runs(store, ids)
        assert result.created == []
        assert sorted(result.skipped) == sorted(ids)

    def test_mixed_seed_alignment_drops_the_seed_schedule(self, tmp_path):
        """Merging an aligned run with a seedless one must not record a
        partial (misaligned) seed schedule on the merged record."""
        store = RunStore(tmp_path)
        a = _record_cell(store, seeds=[1, 2])
        runs = [_metrics()]
        b = store.record_trial_set(
            label="cell-a", runs=runs, aggregate=summarize_runs(runs),
            experiment="run_trials",
            parameters={"scheme": "algorithm_a", "workload": "cell-a"},  # no seeds
        )
        (merged_id,) = merge_runs(store, [a, b]).created
        merged = store.load_trial_set(merged_id)
        assert merged.aggregate.trials == 3
        assert "seeds" not in merged.parameters

    def test_non_trial_set_inputs_are_refused(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        b = store.record_bench([{"name": "bench_x", "mean_seconds": 0.1}])
        with pytest.raises(ValueError, match="only trial_set"):
            merge_runs(store, [a, b])
        with pytest.raises(ValueError, match="at least two"):
            merge_runs(store, [a])


def _set_created_at(store: RunStore, run_id: str, created_at: datetime) -> None:
    path = store.root / f"{run_id}.json"
    payload = json.loads(path.read_text())
    payload["created_at"] = created_at.isoformat()
    path.write_text(json.dumps(payload))


class TestGcRuns:
    def test_keep_count_never_drops_the_latest_per_experiment(self, tmp_path):
        store = RunStore(tmp_path)
        for _ in range(3):
            _record_cell(store, experiment="exp-a")
        newest_a = _record_cell(store, experiment="exp-a")
        newest_b = _record_cell(store, experiment="exp-b")
        for _ in range(2):
            _record_cell(store, experiment="exp-c")
        newest_c = _record_cell(store, experiment="exp-c")

        result = gc_runs(store, keep_count=1)
        survivors = {row["run_id"] for row in store.list_runs()}
        assert {newest_a, newest_b, newest_c} <= survivors
        assert set(result.kept) == survivors
        assert len(result.deleted) == 5  # 8 runs − latest of each of 3 experiments

    def test_age_based_gc_respects_the_latest_invariant(self, tmp_path):
        store = RunStore(tmp_path)
        old = [_record_cell(store, experiment="exp-a") for _ in range(3)]
        ancient = datetime.now(timezone.utc) - timedelta(days=365)
        for run_id in old:
            _set_created_at(store, run_id, ancient)
        result = gc_runs(store, max_age_days=30)
        assert set(result.deleted) == set(old[:-1])  # the newest old run survives
        assert store.load(old[-1])

    def test_unparsable_timestamps_are_never_age_pruned(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        _record_cell(store)
        path = store.root / f"{a}.json"
        payload = json.loads(path.read_text())
        payload["created_at"] = "not a timestamp"
        path.write_text(json.dumps(payload))
        result = gc_runs(store, max_age_days=0.0)
        assert a not in result.deleted

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = RunStore(tmp_path)
        for _ in range(3):
            _record_cell(store)
        before = {row["run_id"] for row in store.list_runs()}
        result = gc_runs(store, keep_count=1, dry_run=True)
        assert result.dry_run and result.deleted
        assert {row["run_id"] for row in store.list_runs()} == before

    def test_gc_without_criteria_is_refused(self, tmp_path):
        with pytest.raises(ValueError):
            gc_runs(RunStore(tmp_path))


class TestGcRunsEdgeCases:
    """gc against stores that never saw a trial set, and gc racing writers."""

    def test_bench_only_store_keeps_the_latest_session(self, tmp_path):
        store = RunStore(tmp_path)
        old = [store.record_bench([{"name": "b", "mean_seconds": 0.1}]) for _ in range(3)]
        newest = store.record_bench([{"name": "b", "mean_seconds": 0.1}])
        result = gc_runs(store, keep_count=0)  # maximum pressure
        assert newest in result.kept
        assert set(result.deleted) == set(old)
        assert [row["run_id"] for row in store.list_runs()] == [newest]

    def test_bench_only_store_age_prune_never_empties_it(self, tmp_path):
        store = RunStore(tmp_path)
        runs = [store.record_bench([{"name": "b", "mean_seconds": 0.1}]) for _ in range(2)]
        ancient = datetime.now(timezone.utc) - timedelta(days=365)
        for run_id in runs:
            _set_created_at(store, run_id, ancient)
        result = gc_runs(store, max_age_days=30)
        assert result.deleted == [runs[0]]  # the newest bench survives, however old
        assert store.load(runs[-1])

    def test_gc_leaves_a_concurrent_writers_staging_file_alone(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        b = _record_cell(store)
        # A concurrent _write() in flight: its document is staged but not yet
        # hard-linked onto a run id.  gc must neither delete nor index it.
        staging = tmp_path / ".staging-racer.json"
        staging.write_text("{}")
        result = gc_runs(store, keep_count=1)
        assert staging.exists()
        assert a in result.deleted and b in result.kept
        assert {row["run_id"] for row in store.list_runs()} == {b}

    def test_gc_discovers_a_claimed_but_unindexed_run(self, tmp_path):
        store = RunStore(tmp_path)
        a = _record_cell(store)
        # A writer that claimed its id (the hard link landed) but crashed
        # before updating index.json: the document exists, the index does not
        # know it.  gc must see it via the rebuild — and protect it, because
        # it is now the newest run of the experiment.
        payload = json.loads((tmp_path / f"{a}.json").read_text())
        payload["run_id"] = "run-000099"
        (tmp_path / "run-000099.json").write_text(json.dumps(payload))
        result = gc_runs(store, keep_count=1)
        assert "run-000099" in result.kept
        assert a in result.deleted

    def test_gc_races_a_live_writer_without_corruption(self, tmp_path):
        store = RunStore(tmp_path)
        for _ in range(5):
            _record_cell(store)
        errors: list = []

        def writer() -> None:
            other = RunStore(tmp_path)  # separate handle, like a second process
            try:
                for _ in range(10):
                    _record_cell(other)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(5):
                gc_runs(store, keep_count=3)
        finally:
            thread.join()
        assert not errors
        # Whatever interleaving happened, the index self-heals to match disk.
        on_disk = {path.stem for path in tmp_path.glob("run-*.json")}
        assert {row["run_id"] for row in store.list_runs()} == on_disk


class TestFingerprintMemoization:
    def test_memoized_payload_matches_cold_canonicalisation(self):
        clear_payload_memo()
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        cold = canonical_payload(workload)
        warm_miss = memoized_payload(workload)
        warm_hit = memoized_payload(workload)
        assert cold == warm_miss == warm_hit
        stats = payload_memo_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_grid_canonicalises_each_unique_object_once(self):
        clear_payload_memo()
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        scheme = algorithm_a()
        factory = RandomNoiseFactory(fraction=0.004)
        keys = [
            fingerprint_trial(TrialSpec(workload, scheme, factory, seed))
            for seed in range(50)
        ]
        stats = payload_memo_stats()
        assert stats["misses"] == 3                 # workload, scheme, factory
        assert stats["hits"] == 3 * 49
        assert len({key.digest for key in keys}) == 50  # seeds still differentiate

    def test_trial_key_is_interned_on_the_spec(self):
        spec = TrialSpec(
            gossip_workload(), algorithm_a(), RandomNoiseFactory(fraction=0.004), 17
        )
        first = fingerprint_trial(spec)
        assert fingerprint_trial(spec) is first

    def test_unstable_specs_stay_unstable_through_the_memo(self):
        clear_payload_memo()
        key = fingerprint_trial(
            TrialSpec(gossip_workload(), algorithm_a(), lambda seed: None, 17)
        )
        assert not key.stable


class TestRunsCliAnalytics:
    def _store_with_pair(self, tmp_path, wall_b: float = 1.0, successes_b=(True, True)):
        store = RunStore(tmp_path)
        a = _record_cell(store, wall_clock=1.0)
        b = _record_cell(store, wall_clock=wall_b, successes=successes_b)
        return store, a, b

    def test_diff_exits_zero_without_regression(self, tmp_path, capsys):
        from repro.cli import main

        _, a, b = self._store_with_pair(tmp_path)
        assert main(["runs", "diff", a, b, "--store-dir", str(tmp_path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_exits_one_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        _, a, b = self._store_with_pair(tmp_path, successes_b=(True, False))
        assert main(["runs", "diff", a, b, "--store-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_tolerance_flag_loosens_the_gate(self, tmp_path, capsys):
        from repro.cli import main

        _, a, b = self._store_with_pair(tmp_path, wall_b=1.5)
        assert main(["runs", "diff", a, b, "--store-dir", str(tmp_path)]) == 1
        capsys.readouterr()
        assert main(
            ["runs", "diff", a, b, "--store-dir", str(tmp_path), "--wall-clock-tolerance", "0.6"]
        ) == 0

    def test_diff_resolves_latest_references(self, tmp_path, capsys):
        from repro.cli import main

        self._store_with_pair(tmp_path)
        assert main(["runs", "diff", "latest~1", "latest", "--store-dir", str(tmp_path)]) == 0

    def test_diff_experiment_filter_scopes_latest_resolution(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        _record_cell(store, experiment="exp-a", wall_clock=1.0)
        _record_cell(store, experiment="exp-a", wall_clock=1.0)
        _record_cell(store, experiment="exp-b", successes=(False, False))
        # Unfiltered, latest is the exp-b run and the cells are disjoint;
        # filtered, both refs resolve inside exp-a and match cleanly.
        assert main(
            ["runs", "diff", "latest~1", "latest", "--experiment", "exp-a",
             "--store-dir", str(tmp_path)]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_show_missing_run_is_a_friendly_exit(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "show", "run-000042", "--store-dir", str(tmp_path)])
        assert excinfo.value.code == 1
        assert "error:" in capsys.readouterr().err

    def test_show_corrupt_run_is_a_friendly_exit(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "run-000001.json").write_text("{ this is not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "show", "run-000001", "--store-dir", str(tmp_path)])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "unreadable" in err

    def test_merge_and_gc_round_trip_through_the_cli(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        a = _record_cell(store, seeds=[1, 2])
        b = _record_cell(store, seeds=[3, 4])
        assert main(["runs", "merge", a, b, "--store-dir", str(tmp_path)]) == 0
        assert "merged run persisted" in capsys.readouterr().out
        merged_id = store.query(kind="trial_set")[-1]["run_id"]
        assert store.load_trial_set(merged_id).aggregate.trials == 4

        assert main(["runs", "gc", "--keep", "1", "--dry-run", "--store-dir", str(tmp_path)]) == 0
        assert "would delete" in capsys.readouterr().out
        assert len(store.list_runs()) == 3  # dry run deleted nothing

        assert main(["runs", "gc", "--keep", "1", "--store-dir", str(tmp_path)]) == 0
        survivors = store.list_runs()
        assert [row["run_id"] for row in survivors] == [merged_id]

    def test_malformed_threshold_env_is_friendly_and_scoped_to_diff(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import DIFF_WALL_CLOCK_ENV, main

        monkeypatch.setenv(DIFF_WALL_CLOCK_ENV, "not-a-number")
        # Unrelated commands must not even notice the bad value...
        assert main(["runs", "list", "--store-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        # ...and diff fails friendly, not with a float() traceback.
        _, a, b = self._store_with_pair(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "diff", a, b, "--store-dir", str(tmp_path)])
        assert excinfo.value.code == 1
        assert DIFF_WALL_CLOCK_ENV in capsys.readouterr().err
        # An explicit flag overrides the broken environment entirely.
        assert main(
            ["runs", "diff", a, b, "--store-dir", str(tmp_path), "--wall-clock-tolerance", "0.5"]
        ) == 0

    def test_gc_without_criteria_is_a_friendly_exit(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "gc", "--store-dir", str(tmp_path)])
        assert excinfo.value.code == 1
        assert "error:" in capsys.readouterr().err

    def test_show_renders_bench_records(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        run_id = store.record_bench([{"name": "bench_x", "mean_seconds": 0.125, "rounds": 1}])
        assert main(["runs", "show", run_id, "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "benchmark session" in out and "bench_x" in out


class _FakeReport:
    """Duck-typed stand-in for ExperimentReport (record_report only needs
    experiment/rows/parameters/generated_at)."""

    def __init__(self, rows, experiment="table1"):
        self.experiment = experiment
        self.rows = rows
        self.parameters = {"seed": 0}
        self.generated_at = "2026-07-30T00:00:00+00:00"


def _table1_row(topology="line", success_rate=1.0, rate=0.5, kind="measured"):
    return {
        "scheme": "algorithm_a",
        "topology": topology,
        "kind": kind,
        "success_rate": success_rate,
        "rate": rate,
    }


class TestReportDiff:
    """Report records diff per-row, keyed on the identity (string) columns."""

    def test_identical_reports_have_no_regressions(self, tmp_path):
        store = RunStore(tmp_path)
        rows = [_table1_row("line"), _table1_row("star")]
        a = store.record_report(_FakeReport(rows))
        b = store.record_report(_FakeReport(rows))
        diff = diff_runs(store.load(a), store.load(b))
        assert diff.kind == "report"
        assert diff.rows and not diff.has_regression

    def test_success_rate_drop_in_one_row_gates(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.record_report(_FakeReport([_table1_row("line"), _table1_row("star")]))
        b = store.record_report(
            _FakeReport([_table1_row("line", success_rate=0.5), _table1_row("star")])
        )
        diff = diff_runs(store.load(a), store.load(b))
        assert diff.has_regression
        regressed = diff.regressions
        assert len(regressed) == 1
        assert "topology=line" in regressed[0].cell
        assert regressed[0].metric == "success_rate"

    def test_rows_present_on_one_side_only_never_gate(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.record_report(_FakeReport([_table1_row("line"), _table1_row("star")]))
        b = store.record_report(_FakeReport([_table1_row("line")]))
        diff = diff_runs(store.load(a), store.load(b))
        assert not diff.has_regression
        assert any(row.status == "only-baseline" for row in diff.rows)

    def test_identity_collisions_fall_back_to_row_position(self, tmp_path):
        store = RunStore(tmp_path)
        rows = [_table1_row("line"), _table1_row("line")]  # same identity twice
        a = store.record_report(_FakeReport(rows))
        b = store.record_report(_FakeReport(rows))
        diff = diff_runs(store.load(a), store.load(b))
        cells = {row.cell for row in diff.rows}
        assert len(cells) == 2  # both rows survived as distinct cells
        assert not diff.has_regression

    def test_report_against_trial_set_is_refused(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.record_report(_FakeReport([_table1_row()]))
        b = _record_cell(store)
        with pytest.raises(ValueError):
            diff_runs(store.load(a), store.load(b))

    def test_cli_diffs_reports_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        store = RunStore(tmp_path)
        store.record_report(_FakeReport([_table1_row()]))
        store.record_report(_FakeReport([_table1_row(success_rate=0.0)]))
        code = main([
            "runs", "diff", "latest~1", "latest",
            "--kind", "report", "--store-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
