"""Property-style equivalence suite for the meeting-points hashing fast path.

Mirrors ``tests/test_transport.py``: every layer of the batched hashing
machinery is run side by side with its per-call / per-bit reference over
random inputs, and the two must agree bit for bit —

* ``SmallBiasGenerator`` table-driven stepping vs the per-bit
  field-multiplication loop (``table_stepping=False``),
* ``SeedSource.seeds_for_iteration`` native overrides vs the per-call
  ``seed_for`` loop, for both seed-source implementations,
* ``InnerProductHash.digest_many`` vs one ``digest`` per value,
* ``MeetingPointsSession`` with ``fast_hashing=True`` vs the reference
  session, in lockstep over random transcripts and corrupted replies,
* whole trials through the engine with every combination of the
  ``fast_hashing`` / ``batch_rounds`` switches.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.strategies import DeletionAdversary, RandomNoiseAdversary
from repro.core.engine import InteractiveCodingSimulator
from repro.core.meeting_points import MeetingPointsSession
from repro.core.parameters import algorithm_a, algorithm_b, crs_oblivious_scheme
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.hashing.inner_product import InnerProductHash
from repro.hashing.seeds import (
    SEED_PURPOSES,
    CrsSeedSource,
    ExchangedSeedSource,
    SeedLayout,
    seed_layout,
)
from repro.hashing.small_bias import SmallBiasGenerator
from repro.utils.bitstring import bits_to_int
from repro.utils.rng import make_rng


# ---------------------------------------------------------------- small bias --


class TestSmallBiasExpansionEquivalence:
    def test_table_stepping_matches_per_bit_reference(self):
        rng = make_rng(11)
        for degree in (8, 16, 32, 64, 128):
            seed = rng.getrandbits(2 * degree)
            fast = SmallBiasGenerator(seed_bits=seed, field_degree=degree)
            reference = SmallBiasGenerator(
                seed_bits=seed, field_degree=degree, table_stepping=False
            )
            for _ in range(6):
                offset = rng.randint(0, 10_000)
                count = rng.randint(0, 400)
                assert fast.packed_bits(offset, count) == reference.packed_bits(offset, count)
                assert fast.packed_bits(offset, count) == bits_to_int(fast.bits(offset, count))

    def test_packed_slots_matches_per_slot_reads(self):
        rng = make_rng(12)
        for trial in range(8):
            generator = SmallBiasGenerator(seed_bits=rng.getrandbits(128))
            slots = []
            position = rng.randint(0, 500)
            for _ in range(rng.randint(1, 5)):
                position += rng.randint(0, 3000)
                length = rng.randint(0, 600)
                slots.append((position, length))
                position += length
            expected = tuple(generator.packed_bits(offset, count) for offset, count in slots)
            assert generator.packed_slots(slots) == expected

    def test_cursor_resume_across_sequential_reads(self):
        """Monotone packed_slots calls (the per-iteration access pattern) stay
        correct when the generator resumes from its cursor memo."""
        rng = make_rng(13)
        fast = SmallBiasGenerator(seed_bits=rng.getrandbits(128))
        cold = SmallBiasGenerator(seed_bits=fast.seed_bits)
        for iteration in range(6):
            base = iteration * 3 * 4096
            slots = [(base, 256), (base + 4096, 1024)]
            warm = fast.packed_slots(slots)
            assert warm == tuple(cold.packed_bits(offset, count) for offset, count in slots)

    def test_packed_slots_rejects_disorder(self):
        generator = SmallBiasGenerator(seed_bits=12345)
        with pytest.raises(ValueError):
            generator.packed_slots([(100, 50), (60, 10)])

    def test_random_access_bit_agrees_with_sequential(self):
        generator = SmallBiasGenerator(seed_bits=make_rng(14).getrandbits(128))
        window = generator.bits(200, 40)
        for offset in range(40):
            assert generator.bit(200 + offset) == window[offset]


# -------------------------------------------------------------- seed sources --


def _random_layout(rng: random.Random) -> SeedLayout:
    lengths = {}
    for purpose in SEED_PURPOSES:
        if rng.random() < 0.75:
            lengths[purpose] = rng.choice([1, 32, 256, 1024])
    return seed_layout(**lengths)


class TestSeedBatchEquivalence:
    def test_crs_batch_matches_per_call_reference(self):
        rng = make_rng(21)
        for trial in range(8):
            master = rng.getrandbits(48)
            link = (rng.randint(0, 5), rng.randint(6, 11))
            batched = CrsSeedSource(master_seed=master, link=link)
            per_call = CrsSeedSource(master_seed=master, link=link)
            for _ in range(4):
                iteration = rng.randint(0, 40)
                layout = _random_layout(rng)
                expected = tuple(
                    per_call.seed_for(iteration, purpose, length) if length else None
                    for purpose, length in zip(SEED_PURPOSES, layout.lengths)
                )
                assert batched.seeds_for_iteration(iteration, layout) == expected
                # warm second call (batch cache) and per-call reads of the
                # slots the batch just filled
                assert batched.seeds_for_iteration(iteration, layout) == expected
                for purpose, length in zip(SEED_PURPOSES, layout.lengths):
                    if length:
                        assert batched.seed_for(iteration, purpose, length) == per_call.seed_for(
                            iteration, purpose, length
                        )

    def test_exchanged_batch_matches_per_call_reference(self):
        rng = make_rng(22)
        for trial in range(6):
            seed = rng.getrandbits(128)
            batched = ExchangedSeedSource(link_seed=seed)
            per_call = ExchangedSeedSource(link_seed=seed)
            reference = ExchangedSeedSource(link_seed=seed, table_expansion=False)
            for iteration in sorted(rng.sample(range(12), 3)):
                layout = _random_layout(rng)
                expected = tuple(
                    per_call.seed_for(iteration, purpose, length) if length else None
                    for purpose, length in zip(SEED_PURPOSES, layout.lengths)
                )
                assert batched.seeds_for_iteration(iteration, layout) == expected
                assert reference.seeds_for_iteration(iteration, layout) == expected

    def test_default_batch_implementation_loops_seed_for(self):
        """The abstract default (no native override) is the per-call loop."""
        from repro.hashing.seeds import SeedSource

        source = CrsSeedSource(master_seed=7, link=(0, 1))
        layout = seed_layout(mp_counter=64, mp_prefix=128)
        expected = tuple(
            source.seed_for(3, purpose, length) if length else None
            for purpose, length in zip(SEED_PURPOSES, layout.lengths)
        )
        assert SeedSource.seeds_for_iteration(source, 3, layout) == expected
        assert source.seeds_for_iteration(3, layout) == expected

    def test_generator_sharing_requires_matching_configuration(self):
        a = ExchangedSeedSource(link_seed=1)
        b = ExchangedSeedSource(link_seed=2)
        with pytest.raises(ValueError):
            b.share_generator_with(a)
        c = ExchangedSeedSource(link_seed=1, table_expansion=False)
        with pytest.raises(ValueError):
            c.share_generator_with(a)

    def test_generator_sharing_preserves_values(self):
        a = ExchangedSeedSource(link_seed=99)
        b = ExchangedSeedSource(link_seed=99)
        independent = ExchangedSeedSource(link_seed=99)
        b.share_generator_with(a)
        layout = seed_layout(mp_counter=256, mp_prefix=1024)
        assert a.seeds_for_iteration(0, layout) == independent.seeds_for_iteration(0, layout)
        assert b.seeds_for_iteration(0, layout) == independent.seeds_for_iteration(0, layout)
        assert b.seed_for(1, "mp_prefix", 512) == independent.seed_for(1, "mp_prefix", 512)

    def test_layout_interning_and_validation(self):
        assert seed_layout(mp_counter=8) is seed_layout(mp_counter=8)
        assert seed_layout(mp_counter=8) is not seed_layout(mp_counter=16)
        with pytest.raises(ValueError):
            seed_layout(bogus=8)
        with pytest.raises(ValueError):
            SeedLayout((1, 2))  # wrong arity
        with pytest.raises(ValueError):
            SeedLayout((-1, 0, 0))


# ------------------------------------------------------------- digest batching --


class TestDigestManyEquivalence:
    def test_matches_per_value_digest(self):
        rng = make_rng(31)
        for _ in range(20):
            tau = rng.choice([1, 4, 8, 12, 17])
            input_bits = rng.choice([1, 32, 128, 200])
            hasher = InnerProductHash(tau)
            seed = rng.getrandbits(hasher.seed_bits_required(input_bits))
            values = [rng.getrandbits(input_bits) for _ in range(rng.randint(1, 4))]
            assert hasher.digest_many(values, input_bits, seed) == tuple(
                hasher.digest(value, input_bits, seed) for value in values
            )

    def test_validates_like_digest(self):
        hasher = InnerProductHash(4)
        with pytest.raises(ValueError):
            hasher.digest_many([16], 4, 0)  # value too wide
        with pytest.raises(ValueError):
            hasher.digest_many([1], 4, 1 << 20)  # seed too long
        assert hasher.digest_many([], 4, 0) == ()


# ------------------------------------------------------- session-level lockstep --


def _transcript(owner: int, neighbor: int, payloads) -> LinkTranscript:
    transcript = LinkTranscript(owner, neighbor)
    for index, payload in enumerate(payloads, start=1):
        transcript.append(ChunkRecord(chunk_index=index, link_view=payload))
    return transcript


def _random_payloads(rng: random.Random, count: int):
    return [(rng.randint(0, 1), rng.randint(0, 1)) for _ in range(count)]


def _corrupt(rng: random.Random, message):
    """Randomly flip / erase a few symbols of an outgoing hash message."""
    symbols = list(message)
    for index in range(len(symbols)):
        roll = rng.random()
        if roll < 0.05:
            symbols[index] = None
        elif roll < 0.12:
            symbols[index] = 1 - symbols[index]
    return symbols


def _outcome_tuple(outcome):
    return (
        outcome.status,
        outcome.truncate_to,
        outcome.k_agreed,
        outcome.full_match,
        outcome.vote,
        outcome.reset,
    )


def _session_state(session: MeetingPointsSession):
    return (
        session.k,
        session.error_count,
        session.mpc1,
        session.mpc2,
        session.status,
        session.truncations,
        session.resets,
    )


@pytest.mark.parametrize("source_kind", ["crs", "exchanged"])
@pytest.mark.parametrize("hash_input_mode", ["fingerprint", "raw"])
def test_session_fast_path_is_bit_identical_to_reference(source_kind, hash_input_mode):
    """The tentpole guarantee at session level: identical wire messages,
    outcomes and search state under noisy replies, for every seed source."""
    for trial in range(6):
        rng = make_rng(1000 * trial + 41)
        tau = rng.choice([4, 8, 12])
        hasher = InnerProductHash(tau)

        def build_source():
            # Raw-mode hash inputs need τ·4096-bit seeds, so give both
            # sources slots big enough to hold them (the unified expansion
            # contract sizes slots identically for CRS and exchanged seeds);
            # the exchanged seed fills both AGHP field elements (x and y
            # non-degenerate).
            if source_kind == "crs":
                return CrsSeedSource(master_seed=4242, link=(0, 1), slot_capacity_bits=1 << 16)
            return ExchangedSeedSource(
                link_seed=0x9D1C_37A2_55B0_4E11_6F08_42D3_91AC_7E65, slot_capacity_bits=1 << 16
            )

        def build_session(fast: bool) -> MeetingPointsSession:
            return MeetingPointsSession(
                hasher=hasher,
                seed_source=build_source(),
                hash_input_mode=hash_input_mode,
                fast_hashing=fast,
            )

        payloads = _random_payloads(rng, rng.randint(0, 12))
        fast_transcript = _transcript(0, 1, payloads)
        reference_transcript = _transcript(0, 1, payloads)
        fast_session = build_session(True)
        reference_session = build_session(False)

        noise_seed = rng.getrandbits(32)
        fast_noise = make_rng(noise_seed)
        reference_noise = make_rng(noise_seed)
        for iteration in range(15):
            fast_message = fast_session.build_message(iteration, fast_transcript)
            reference_message = reference_session.build_message(iteration, reference_transcript)
            assert fast_message == reference_message, (trial, iteration)

            reply = _corrupt(fast_noise, fast_message)
            assert reply == _corrupt(reference_noise, reference_message)
            fast_outcome = fast_session.process_reply(iteration, fast_transcript, reply)
            reference_outcome = reference_session.process_reply(
                iteration, reference_transcript, reply
            )
            assert _outcome_tuple(fast_outcome) == _outcome_tuple(reference_outcome)
            assert _session_state(fast_session) == _session_state(reference_session)
            if fast_outcome.truncate_to is not None:
                fast_transcript.truncate_to(fast_outcome.truncate_to)
                reference_transcript.truncate_to(reference_outcome.truncate_to)


# ------------------------------------------------------------ trial-level runs --


def _trial_fingerprint(result):
    return (
        result.success,
        result.outputs,
        result.metrics,
        result.channel_summary,
        result.iterations_run,
        result.final_link_agreement,
        result.randomness_exchange_agreed,
    )


_TRIAL_CASES = {
    "crs-noise": (crs_oblivious_scheme, lambda: RandomNoiseAdversary(corruption_probability=0.004, seed=3)),
    "crs-inserting": (
        crs_oblivious_scheme,
        lambda: RandomNoiseAdversary(corruption_probability=0.002, insertion_probability=0.002, seed=4),
    ),
    "algorithm-a-deletion": (algorithm_a, lambda: DeletionAdversary(deletion_probability=0.004, seed=5)),
    "algorithm-b-noise": (algorithm_b, lambda: RandomNoiseAdversary(corruption_probability=0.002, seed=6)),
}


@pytest.mark.parametrize("case", sorted(_TRIAL_CASES))
def test_full_trial_bit_identity_across_fast_path_switches(case, gossip_clique4):
    """Whole trials agree field for field across every switch combination."""
    scheme_factory, adversary_factory = _TRIAL_CASES[case]

    def run(fast_hashing: bool, batch_rounds: bool):
        simulator = InteractiveCodingSimulator(
            gossip_clique4,
            scheme=scheme_factory(),
            adversary=adversary_factory(),
            seed=7,
        )
        simulator.fast_hashing = fast_hashing
        simulator.batch_rounds = batch_rounds
        return simulator.run()

    reference = _trial_fingerprint(run(False, False))
    for fast_hashing, batch_rounds in ((True, False), (False, True), (True, True)):
        assert _trial_fingerprint(run(fast_hashing, batch_rounds)) == reference, (
            case,
            fast_hashing,
            batch_rounds,
        )


@pytest.mark.parametrize("case", sorted(_TRIAL_CASES))
def test_full_trial_bit_identity_with_obs_on_and_off(case, gossip_clique4):
    """Observability is a pure reader: metrics + tracing change nothing.

    The tracer draws its ids from ``os.urandom`` and the registry flush runs
    after the simulation, so every field of the result — outputs, metrics,
    channel summary — must match the uninstrumented run bit for bit, on both
    the fast and the reference hashing paths.
    """
    from repro.obs import MetricsRegistry, Tracer, use_obs

    scheme_factory, adversary_factory = _TRIAL_CASES[case]

    def run(fast_hashing: bool):
        simulator = InteractiveCodingSimulator(
            gossip_clique4,
            scheme=scheme_factory(),
            adversary=adversary_factory(),
            seed=7,
        )
        simulator.fast_hashing = fast_hashing
        return simulator.run()

    for fast_hashing in (False, True):
        plain = _trial_fingerprint(run(fast_hashing))
        registry = MetricsRegistry()
        with use_obs(metrics=registry, tracer=Tracer()):
            observed = _trial_fingerprint(run(fast_hashing))
        assert observed == plain, (case, fast_hashing)
        # The flush attributed the hash builds to the right implementation.
        counters = registry.snapshot()["counters"]
        if fast_hashing:
            assert counters.get("hashing.packed_builds", 0) > 0
            assert counters.get("hashing.reference_builds", 0) == 0
        else:
            assert counters.get("hashing.reference_builds", 0) > 0
            assert counters.get("hashing.packed_builds", 0) == 0
