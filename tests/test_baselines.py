"""Tests for the uncoded, repetition and fully-utilised baselines."""

from __future__ import annotations

import pytest

from repro.adversary.strategies import DeletionAdversary, LinkTargetedAdversary
from repro.baselines.fully_utilized import fully_utilized_overhead
from repro.baselines.repetition import run_repetition
from repro.baselines.uncoded import run_uncoded


class TestUncoded:
    def test_clean_channel_succeeds(self, gossip_line5):
        result = run_uncoded(gossip_line5)
        assert result.success
        assert result.metrics.overhead == pytest.approx(1.0)

    def test_single_error_breaks_it(self, gossip_line5):
        # Flip the very first bit party 0 sends to party 1 (an additive offset
        # always changes the delivered value, so the corruption is observable).
        from repro.adversary.oblivious import AdditiveObliviousAdversary

        adversary = AdditiveObliviousAdversary(pattern={(0, 0, 1): 1})
        result = run_uncoded(gossip_line5, adversary=adversary)
        assert not result.success
        assert result.metrics.corruptions == 1

    def test_deletions_break_it(self, aggregation_line6):
        adversary = DeletionAdversary(deletion_probability=0.2, seed=2)
        result = run_uncoded(aggregation_line6, adversary=adversary)
        assert not result.success

    def test_outputs_match_reference_shape(self, gossip_line5):
        result = run_uncoded(gossip_line5)
        assert set(result.outputs) == set(result.reference_outputs)

    def test_metrics_name(self, gossip_line5):
        assert run_uncoded(gossip_line5, name="plain").metrics.scheme == "plain"


class TestRepetition:
    def test_clean_channel_succeeds_with_3x_overhead(self, gossip_line5):
        result = run_repetition(gossip_line5, repetitions=3)
        assert result.success
        assert result.metrics.overhead == pytest.approx(3.0)

    def test_single_substitution_is_corrected(self, gossip_line5):
        adversary = LinkTargetedAdversary(target=(0, 1), max_corruptions=1, seed=3)
        result = run_repetition(gossip_line5, adversary=adversary, repetitions=3)
        assert result.success

    def test_targeted_burst_defeats_it(self, gossip_line5):
        # Three consecutive corruptions on the same link hit one repetition
        # group and flip the decoded bit.  Party 1's input is 1, so whatever
        # mix of flips and deletions the burst applies, the majority decodes 0.
        adversary = LinkTargetedAdversary(target=(1, 0), max_corruptions=3, seed=4)
        result = run_repetition(gossip_line5, adversary=adversary, repetitions=3)
        assert not result.success

    def test_invalid_repetitions(self, gossip_line5):
        with pytest.raises(ValueError):
            run_repetition(gossip_line5, repetitions=0)

    def test_repetitions_scale_communication(self, gossip_line5):
        five = run_repetition(gossip_line5, repetitions=5)
        assert five.metrics.overhead == pytest.approx(5.0)


class TestFullyUtilizedConversion:
    def test_dense_protocol_has_no_conversion_cost(self, gossip_clique4):
        conversion = fully_utilized_overhead(gossip_clique4)
        assert conversion.overhead == pytest.approx(1.0)

    def test_sparse_protocol_pays_up_to_m(self, aggregation_line6):
        conversion = fully_utilized_overhead(aggregation_line6)
        # one transmission per round over m=5 links -> conversion costs 2m
        assert conversion.overhead == pytest.approx(2 * aggregation_line6.graph.num_edges)

    def test_converted_communication_formula(self, aggregation_line6):
        conversion = fully_utilized_overhead(aggregation_line6)
        assert conversion.converted_communication == (
            2 * aggregation_line6.graph.num_edges * aggregation_line6.num_rounds
        )
