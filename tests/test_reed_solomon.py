"""Unit and property tests for the Reed-Solomon code."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf256 import poly_eval, gf_pow, GENERATOR
from repro.coding.reed_solomon import DecodingError, ReedSolomonCode


class TestParameters:
    def test_valid_parameters(self):
        code = ReedSolomonCode(15, 9)
        assert code.parity_length == 6
        assert code.distance == 7
        assert code.rate == pytest.approx(0.6)

    @pytest.mark.parametrize("n,k", [(256, 10), (10, 10), (10, 0), (5, 6)])
    def test_invalid_parameters(self, n, k):
        with pytest.raises(ValueError):
            ReedSolomonCode(n, k)

    def test_generator_polynomial_roots(self):
        code = ReedSolomonCode(12, 8)
        generator = code.generator_polynomial()
        for i in range(code.parity_length):
            assert poly_eval(generator, gf_pow(GENERATOR, i)) == 0


class TestEncoding:
    def test_encode_length_and_systematic_part(self):
        code = ReedSolomonCode(10, 4)
        message = [1, 2, 3, 4]
        codeword = code.encode(message)
        assert len(codeword) == 10
        assert code.extract_message(codeword) == message

    def test_codeword_has_zero_syndromes(self):
        code = ReedSolomonCode(20, 11)
        codeword = code.encode(list(range(11)))
        assert all(s == 0 for s in code.syndromes(codeword))

    def test_encode_rejects_wrong_length(self):
        code = ReedSolomonCode(10, 4)
        with pytest.raises(ValueError):
            code.encode([1, 2, 3])

    def test_encode_rejects_non_field_symbols(self):
        code = ReedSolomonCode(10, 4)
        with pytest.raises(ValueError):
            code.encode([1, 2, 3, 300])


class TestDecoding:
    def test_no_errors(self):
        code = ReedSolomonCode(12, 6)
        message = [7, 0, 255, 3, 9, 100]
        assert code.decode(code.encode(message)) == message

    def test_single_error(self):
        code = ReedSolomonCode(12, 6)
        message = [7, 0, 255, 3, 9, 100]
        word = code.encode(message)
        word[2] ^= 0x55
        assert code.decode(word) == message

    def test_errors_up_to_half_distance(self):
        code = ReedSolomonCode(16, 8)
        message = list(range(8))
        word = code.encode(message)
        for position in (0, 5, 9, 15):
            word[position] ^= 0xAA
        assert code.decode(word) == message

    def test_erasures_up_to_parity(self):
        code = ReedSolomonCode(16, 8)
        message = list(range(8))
        word = code.encode(message)
        erasures = [0, 3, 5, 7, 9, 11, 13, 15]
        for position in erasures:
            word[position] = 0
        assert code.decode(word, erasure_positions=erasures) == message

    def test_mixed_errors_and_erasures(self):
        code = ReedSolomonCode(20, 10)
        message = list(range(10, 20))
        word = code.encode(message)
        erasures = [1, 2, 3, 4]
        for position in erasures:
            word[position] = 99
        word[10] ^= 1
        word[15] ^= 7
        assert code.decode(word, erasure_positions=erasures) == message

    def test_too_many_erasures(self):
        code = ReedSolomonCode(10, 6)
        word = code.encode([0] * 6)
        with pytest.raises(DecodingError):
            code.decode(word, erasure_positions=[0, 1, 2, 3, 4])

    def test_beyond_radius_raises_or_miscorrects(self):
        code = ReedSolomonCode(10, 6)
        message = [1, 2, 3, 4, 5, 6]
        word = code.encode(message)
        rng = random.Random(0)
        for position in range(6):
            word[position] ^= rng.randrange(1, 256)
        try:
            decoded = code.decode(word)
        except DecodingError:
            return
        # If it decodes, it must decode to a different codeword (list decoding
        # is out of scope); either way the call must not loop or crash.
        assert decoded != message or decoded == message

    def test_wrong_length_rejected(self):
        code = ReedSolomonCode(10, 6)
        with pytest.raises(ValueError):
            code.decode([0] * 9)

    def test_erasure_position_out_of_range(self):
        code = ReedSolomonCode(10, 6)
        with pytest.raises(ValueError):
            code.decode(code.encode([0] * 6), erasure_positions=[10])


@settings(max_examples=40, deadline=None)
@given(
    st.integers(8, 40),
    st.data(),
)
def test_random_error_erasure_patterns_roundtrip(n, data):
    """Any pattern with 2*errors + erasures <= n-k must decode correctly."""
    k = data.draw(st.integers(1, n - 4))
    code = ReedSolomonCode(n, k)
    message = data.draw(st.lists(st.integers(0, 255), min_size=k, max_size=k))
    word = code.encode(message)
    parity = n - k
    num_erasures = data.draw(st.integers(0, parity))
    num_errors = data.draw(st.integers(0, (parity - num_erasures) // 2))
    positions = data.draw(
        st.lists(st.integers(0, n - 1), min_size=num_erasures + num_errors,
                 max_size=num_erasures + num_errors, unique=True)
    )
    erasures = positions[:num_erasures]
    errors = positions[num_erasures:]
    for position in erasures:
        word[position] = data.draw(st.integers(0, 255))
    for position in errors:
        word[position] ^= data.draw(st.integers(1, 255))
    assert code.decode(word, erasure_positions=erasures) == message
