"""Tests for :mod:`repro.obs`: metrics, tracing, logging and their surfacing.

The guarantees pinned here:

1. the :class:`MetricsRegistry` accumulates counters/gauges/histograms and
   snapshots them flat (histograms expanded to ``.count``/``.sum``/``.max``);
2. the :class:`Tracer` nests spans per thread, samples trials, adopts remote
   spans onto its own trace id, and drains destructively;
3. the ambient :func:`use_obs` scope is thread-local and fingerprint-neutral
   (no ``TrialKey`` change, bit-identical results with obs on and off);
4. an instrumented engine run flushes the documented counter families
   (``engine.*``, ``transport.*``, ``hashing.*``);
5. traces persist to the :class:`RunStore` and render via ``repro runs
   trace``; metrics render via ``repro runs metrics`` and gate via
   ``repro runs diff --kind metrics``;
6. a 2-worker distributed sweep yields ONE trace, in the coordinator's
   store, covering spans from both workers (the tentpole acceptance test);
7. structured logging emits parseable human and JSON lines.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload
from repro.obs import (
    DISABLED,
    MetricsRegistry,
    Tracer,
    counters_delta,
    critical_path,
    format_metrics_rows,
    get_logger,
    get_obs,
    render_critical_path,
    render_trace_tree,
    use_obs,
)
from repro.obs.log import configure as configure_logging
from repro.runtime import (
    DistributedBackend,
    RunStore,
    SerialBackend,
    WorkerServer,
    build_trial_specs,
    derive_trial_seed,
    fingerprint_trial,
    use_runtime,
)


def _cell():
    workload = gossip_workload(topology="line", num_nodes=4, phases=6)
    return workload, algorithm_a(), RandomNoiseFactory(fraction=0.004)


def _run(backend=None, trials=3, **kwargs):
    workload, scheme, factory = _cell()
    return run_trials(
        workload, scheme, adversary_factory=factory, trials=trials, base_seed=3,
        backend=backend or SerialBackend(), cache=None, store=None, **kwargs,
    )


class TestMetricsRegistry:
    def test_counters_accumulate_and_skip_zero(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 4)
        registry.inc("a.zero", 0)  # never materialised
        registry.inc_many({"c": 2, "d": 0}, prefix="x.")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a.b": 5, "x.c": 2}

    def test_histograms_flatten_to_count_sum_max(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 1.0):
            registry.observe("t_seconds", value)
        flat = registry.flat_snapshot()
        assert flat["t_seconds.count"] == 3
        assert flat["t_seconds.sum"] == pytest.approx(3.0)
        assert flat["t_seconds.max"] == pytest.approx(1.5)
        assert registry.snapshot()["histograms"]["t_seconds"]["min"] == pytest.approx(0.5)

    def test_nearest_rank_percentile(self):
        from repro.obs import percentile

        samples = list(range(1, 101))  # 1..100: pN is exactly N
        assert percentile(samples, 50) == 50
        assert percentile(samples, 90) == 90
        assert percentile(samples, 99) == 99
        assert percentile([7.0], 50) == 7.0
        assert percentile([3.0, 1.0], 99) == 3.0  # unsorted input is fine
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_histogram_snapshots_report_percentiles(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("t_seconds", float(value))
        entry = registry.snapshot()["histograms"]["t_seconds"]
        assert (entry["p50"], entry["p90"], entry["p99"]) == (50.0, 90.0, 99.0)
        flat = registry.flat_snapshot()
        assert flat["t_seconds.p50"] == 50.0
        assert flat["t_seconds.p90"] == 90.0
        assert flat["t_seconds.p99"] == 99.0

    def test_percentile_window_is_bounded_and_recency_weighted(self):
        from repro.obs.metrics import RETAINED_SAMPLES

        registry = MetricsRegistry()
        for _ in range(RETAINED_SAMPLES):
            registry.observe("t_seconds", 1.0)
        for _ in range(RETAINED_SAMPLES):
            registry.observe("t_seconds", 5.0)  # evicts every 1.0 sample
        flat = registry.flat_snapshot()
        assert flat["t_seconds.p50"] == 5.0
        assert flat["t_seconds.count"] == 2 * RETAINED_SAMPLES  # summary keeps all

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g", 1.0)
        registry.gauge("g", 7.0)
        assert registry.flat_snapshot()["g"] == 7.0

    def test_counters_delta_keeps_only_moved_keys(self):
        before = {"a": 1, "b": 2}
        after = {"a": 1, "b": 5, "c": 3}
        assert counters_delta(before, after) == {"b": 3, "c": 3}

    def test_format_rows_filters_by_prefix(self):
        rows = format_metrics_rows({"engine.x": 1.0, "cache.y": 2.0}, ("engine.",))
        assert [row["metric"] for row in rows] == ["engine.x"]
        assert rows[0]["value"] == 1  # integral floats render as ints

    def test_thread_safety_under_concurrent_inc(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.snapshot()["counters"]["n"] == 4000


class TestTracer:
    def test_spans_nest_on_the_open_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.drain()
        assert [span["name"] for span in spans] == ["inner", "outer"]  # close order
        assert all(span["trace_id"] == tracer.trace_id for span in spans)
        assert all(span["duration"] >= 0 for span in spans)

    def test_sampling_suppresses_unsampled_trials_and_their_children(self):
        tracer = Tracer(sample_every=2)
        for index in range(4):
            with tracer.trial(seed=index) as span:
                with tracer.span("phase"):
                    pass
                if index % 2 == 0:
                    assert span is not None
                else:
                    assert span is None
        spans = tracer.drain()
        # trials 0 and 2 recorded (trial + phase each); 1 and 3 fully suppressed
        assert len(spans) == 4
        assert sum(1 for span in spans if span["name"] == "trial") == 2

    def test_adopt_rewrites_the_trace_id(self):
        remote = Tracer(worker="host:1")
        with remote.span("worker_chunk"):
            pass
        local = Tracer()
        adopted = local.adopt(remote.drain())
        assert adopted == 1
        (span,) = local.drain()
        assert span["trace_id"] == local.trace_id
        assert span["worker"] == "host:1"

    def test_drain_is_destructive(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_explicit_parent_overrides_the_stack(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b", parent_id="elsewhere"):
                pass
        spans = {span["name"]: span for span in tracer.drain()}
        assert spans["b"]["parent_id"] == "elsewhere"

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestObsContext:
    def test_default_is_disabled(self):
        context = get_obs()
        assert context.metrics is None and context.tracer is None
        assert not DISABLED.enabled

    def test_use_obs_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_obs(metrics=registry):
            assert get_obs().metrics is registry
            assert get_obs().tracer is None
        assert get_obs().metrics is None

    def test_nesting_inherits_unset_fields(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_obs(metrics=registry, tracer=tracer):
            with use_obs(tracer=None):  # narrow: metrics stay, tracer off
                assert get_obs().metrics is registry
                assert get_obs().tracer is None
            assert get_obs().tracer is tracer

    def test_scope_is_thread_local(self):
        registry = MetricsRegistry()
        seen = {}

        def probe():
            seen["metrics"] = get_obs().metrics

        with use_obs(metrics=registry):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["metrics"] is None  # the override never leaked across threads


class TestEngineInstrumentation:
    def test_engine_flushes_the_documented_counter_families(self):
        registry = MetricsRegistry()
        with use_obs(metrics=registry):
            _run(trials=2)
        counters = registry.snapshot()["counters"]
        assert counters["engine.trials"] == 2
        assert counters["engine.rounds_total"] > 0
        assert counters["transport.windows_exchanged"] > 0
        assert counters["transport.transmissions"] > 0
        assert counters["hashing.seed_derivations"] > 0
        # per-phase attribution sums over the documented phases
        phase_keys = [key for key in counters if key.startswith("engine.rounds.")]
        assert set(phase_keys) >= {"engine.rounds.meeting_points", "engine.rounds.simulation"}

    def test_results_are_bit_identical_with_obs_on_and_off(self):
        plain = _run(trials=3)
        with use_obs(metrics=MetricsRegistry(), tracer=Tracer()):
            observed = _run(trials=3)
        assert [run.to_payload() for run in plain.runs] == [
            run.to_payload() for run in observed.runs
        ]

    def test_fingerprints_are_obs_invisible(self):
        workload, scheme, factory = _cell()
        specs = build_trial_specs(workload, scheme, factory, [derive_trial_seed(3, 0)])
        cold = fingerprint_trial(specs[0]).digest
        with use_obs(metrics=MetricsRegistry(), tracer=Tracer()):
            specs_obs = build_trial_specs(workload, scheme, factory, [derive_trial_seed(3, 0)])
            assert fingerprint_trial(specs_obs[0]).digest == cold

    def test_tracer_records_the_trial_phase_hierarchy(self):
        tracer = Tracer()
        with use_obs(tracer=tracer):
            _run(trials=1)
        spans = tracer.drain()
        names = {span["name"] for span in spans}
        assert {"trial_set", "trial", "iteration", "phase"} <= names
        by_id = {span["span_id"]: span for span in spans}
        phases = [span for span in spans if span["name"] == "phase"]
        assert phases and all(
            by_id[span["parent_id"]]["name"] == "iteration" for span in phases
        )


class TestStoreAndCli:
    def _record_observed_cell(self, tmp_path, fraction=0.004, trace=True):
        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        store = RunStore(tmp_path)
        tracer = Tracer() if trace else None
        with use_obs(metrics=MetricsRegistry(), tracer=tracer):
            run_trials(
                workload, algorithm_a(), adversary_factory=RandomNoiseFactory(fraction=fraction),
                trials=2, base_seed=3, backend=SerialBackend(), cache=None, store=store,
            )
        return store

    def test_trace_records_persist_and_render(self, tmp_path, capsys):
        from repro.cli import main

        store = self._record_observed_cell(tmp_path)
        (trace_row,) = store.query(kind="trace")
        assert main(["runs", "trace", trace_row["run_id"], "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trial_set" in out and "critical path" in out

    def test_runs_metrics_renders_and_filters(self, tmp_path, capsys):
        from repro.cli import main

        store = self._record_observed_cell(tmp_path, trace=False)
        (row,) = store.query(kind="trial_set")
        assert main([
            "runs", "metrics", row["run_id"], "--store-dir", str(tmp_path),
            "--prefix", "engine.",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine.trials" in out and "transport." not in out

    def test_runs_metrics_surfaces_histogram_percentiles(self, tmp_path, capsys):
        """A distributed cell records heartbeat-gap histograms; the stored
        metrics must carry p50/p90/p99 and `runs metrics` must render them
        in both the text table and --json."""
        from repro.cli import main

        server = WorkerServer().start()
        try:
            workload, scheme, factory = _cell()
            store = RunStore(tmp_path)
            backend = DistributedBackend(
                workers=[server.address], chunk_size=1, probe_cache=False
            )
            with use_obs(metrics=MetricsRegistry()):
                with use_runtime(backend=backend, cache=None, store=store):
                    run_trials(workload, scheme, adversary_factory=factory,
                               trials=2, base_seed=3)
            backend.close()
        finally:
            server.stop()
        (row,) = store.query(kind="trial_set")
        assert main([
            "runs", "metrics", row["run_id"], "--store-dir", str(tmp_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        for rank in (50, 90, 99):
            assert f"distributed.heartbeat_seconds.p{rank}" in payload
        assert main([
            "runs", "metrics", row["run_id"], "--store-dir", str(tmp_path),
            "--prefix", "distributed.",
        ]) == 0
        out = capsys.readouterr().out
        assert "distributed.heartbeat_seconds.p50" in out
        assert "distributed.heartbeat_seconds.p99" in out

    def test_runs_metrics_without_obs_fails_friendly(self, tmp_path, capsys):
        from repro.cli import main

        workload = gossip_workload(topology="line", num_nodes=4, phases=6)
        store = RunStore(tmp_path)
        run_trials(
            workload, algorithm_a(), trials=1, base_seed=3,
            backend=SerialBackend(), cache=None, store=store,
        )
        (row,) = store.query(kind="trial_set")
        with pytest.raises(SystemExit):
            main(["runs", "metrics", row["run_id"], "--store-dir", str(tmp_path)])
        assert "--obs" in capsys.readouterr().err

    def test_metrics_diff_passes_on_identical_runs(self, tmp_path, capsys):
        from repro.cli import main

        self._record_observed_cell(tmp_path, trace=False)
        self._record_observed_cell(tmp_path, trace=False)
        code = main([
            "runs", "diff", "latest~1", "latest",
            "--kind", "metrics", "--store-dir", str(tmp_path),
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_metrics_diff_gates_on_counter_increase(self, tmp_path, capsys):
        from repro.cli import main

        self._record_observed_cell(tmp_path, fraction=0.0, trace=False)
        # More noise → more corruptions/rewinds → counters move; label matches
        # because the label only encodes workload/scheme.
        self._record_observed_cell(tmp_path, fraction=0.02, trace=False)
        code = main([
            "runs", "diff", "latest~1", "latest",
            "--kind", "metrics", "--store-dir", str(tmp_path),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_runs_show_mentions_recorded_obs_metrics(self, tmp_path, capsys):
        from repro.cli import main

        store = self._record_observed_cell(tmp_path, trace=False)
        (row,) = store.query(kind="trial_set")
        assert main(["runs", "show", row["run_id"], "--store-dir", str(tmp_path)]) == 0
        assert "obs metrics" in capsys.readouterr().out

    def test_cli_obs_flag_records_metrics_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "noise-sweep", "--trials", "1", "--multipliers", "1.0",
            "--phases", "4", "--nodes", "4", "--obs", "--trace",
            "--store-dir", str(tmp_path),
        ])
        assert code == 0
        capsys.readouterr()
        store = RunStore(tmp_path)
        assert store.query(kind="trace")
        (cell,) = store.query(kind="trial_set")
        assert store.load(cell["run_id"])["obs_metrics"]


class TestDistributedTracing:
    def test_two_worker_sweep_yields_one_coherent_cross_host_trace(self, tmp_path):
        workers = [WorkerServer().start(), WorkerServer().start()]
        try:
            workload, scheme, factory = _cell()
            store = RunStore(tmp_path)
            backend = DistributedBackend(
                workers=[server.address for server in workers],
                chunk_size=1,  # force chunks onto both workers
                probe_cache=False,
            )
            registry, tracer = MetricsRegistry(), Tracer()
            with use_obs(metrics=registry, tracer=tracer):
                with use_runtime(backend=backend, cache=None, store=store):
                    run_trials(
                        workload, scheme, adversary_factory=factory,
                        trials=6, base_seed=3,
                    )
            backend.close()
        finally:
            for server in workers:
                server.stop()

        (trace_row,) = store.query(kind="trace")
        payload = store.load(trace_row["run_id"])
        spans = payload["spans"]
        # ONE trace id covers every span, from the coordinator and both workers.
        assert {span["trace_id"] for span in spans} == {payload["trace_id"]}
        span_workers = {span["worker"] for span in spans}
        assert {server.worker_id for server in workers} <= span_workers
        # Remote trial spans parent onto worker_chunk, which parents onto the
        # coordinator's dispatch_chunk — the cross-host chain is unbroken.
        by_id = {span["span_id"]: span for span in spans}
        chunks = [span for span in spans if span["name"] == "worker_chunk"]
        assert chunks
        for chunk in chunks:
            assert by_id[chunk["parent_id"]]["name"] == "dispatch_chunk"
        assert registry.snapshot()["counters"]["distributed.chunks_dispatched"] == 6
        # The rendered tree and critical path span the cluster.
        assert len(render_trace_tree(spans)) == len(spans)
        path = critical_path(spans)
        assert path[0]["name"] == "trial_set"
        assert render_critical_path(spans)[0].startswith("-> trial_set")

    def test_worker_status_endpoint_serves_live_metrics(self):
        import urllib.request

        server = WorkerServer(status_port=0).start()
        try:
            url = f"http://{server.host}:{server.status_port}/"
            with urllib.request.urlopen(url, timeout=5) as response:
                status = json.loads(response.read().decode("utf-8"))
            assert status["worker_id"] == server.worker_id
            assert status["trials_executed"] == 0
            assert "metrics" in status and "cache" in status
        finally:
            server.stop()


class TestStructuredLogging:
    def test_human_format_renders_event_and_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", json_output=False, stream=stream)
        try:
            get_logger("testsub").info("thing_happened", worker="w1", count=3)
        finally:
            configure_logging()  # restore the default warning/stderr handler
        line = stream.getvalue().strip()
        assert "repro.testsub: thing_happened" in line
        assert "worker=w1" in line and "count=3" in line

    def test_json_format_is_machine_parseable(self):
        stream = io.StringIO()
        configure_logging(level="info", json_output=True, stream=stream)
        try:
            get_logger("testsub").warning("cluster_degraded", reachable=1, requested=2)
        finally:
            configure_logging()
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "cluster_degraded"
        assert payload["reachable"] == 1 and payload["level"] == "warning"

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="warning", json_output=False, stream=stream)
        try:
            get_logger("testsub").info("too_quiet")
            get_logger("testsub").warning("loud_enough")
        finally:
            configure_logging()
        output = stream.getvalue()
        assert "too_quiet" not in output and "loud_enough" in output

    def test_unknown_level_is_refused(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")


class TestSurfaceRendering:
    def _spans(self):
        return [
            {"name": "root", "span_id": "r", "parent_id": None, "start": 0.0,
             "duration": 10.0, "worker": "local", "attrs": {}},
            {"name": "fast", "span_id": "f", "parent_id": "r", "start": 1.0,
             "duration": 2.0, "worker": "local", "attrs": {}},
            {"name": "slow", "span_id": "s", "parent_id": "r", "start": 2.0,
             "duration": 7.0, "worker": "w2", "attrs": {"chunk": 1}},
        ]

    def test_tree_indents_children_under_parents(self):
        lines = render_trace_tree(self._spans())
        assert lines[0].startswith("root")
        assert lines[1].startswith("  fast")
        assert "@w2" in lines[2]  # remote workers are called out

    def test_critical_path_follows_the_latest_finisher(self):
        path = critical_path(self._spans())
        assert [span["name"] for span in path] == ["root", "slow"]

    def test_orphan_spans_root_their_own_tree(self):
        spans = [{"name": "lonely", "span_id": "x", "parent_id": "missing",
                  "start": 0.0, "duration": 1.0, "worker": "local", "attrs": {}}]
        assert render_trace_tree(spans) == ["lonely [1000.00 ms]"]
        assert render_critical_path(spans) == ["-> lonely [1000.00 ms]"]

    def test_empty_trace_renders_placeholders(self):
        assert render_trace_tree([]) == ["(no spans recorded)"]
        assert critical_path([]) == []
