"""Tests for the per-link seed sources (CRS and exchanged δ-biased seeds)."""

from __future__ import annotations

import pytest

from repro.hashing.seeds import SEED_PURPOSES, CrsSeedSource, ExchangedSeedSource


class TestCrsSeedSource:
    def test_both_endpoints_agree(self):
        a = CrsSeedSource(master_seed=42, link=(0, 1))
        b = CrsSeedSource(master_seed=42, link=(0, 1))
        for purpose in SEED_PURPOSES:
            assert a.seed_for(3, purpose, 256) == b.seed_for(3, purpose, 256)

    def test_different_links_get_different_seeds(self):
        a = CrsSeedSource(master_seed=42, link=(0, 1))
        b = CrsSeedSource(master_seed=42, link=(0, 2))
        assert a.seed_for(0, "mp_prefix", 256) != b.seed_for(0, "mp_prefix", 256)

    def test_different_iterations_differ(self):
        source = CrsSeedSource(master_seed=1, link=(0, 1))
        assert source.seed_for(0, "mp_prefix", 256) != source.seed_for(1, "mp_prefix", 256)

    def test_different_purposes_differ(self):
        source = CrsSeedSource(master_seed=1, link=(0, 1))
        assert source.seed_for(0, "mp_prefix", 256) != source.seed_for(0, "mp_counter", 256)

    def test_unknown_purpose_rejected(self):
        source = CrsSeedSource(master_seed=1, link=(0, 1))
        with pytest.raises(ValueError):
            source.seed_for(0, "nonsense", 16)

    def test_length_respected(self):
        source = CrsSeedSource(master_seed=1, link=(0, 1))
        assert source.seed_for(0, "mp_prefix", 64) < (1 << 64)

    def test_caching_is_stable(self):
        source = CrsSeedSource(master_seed=1, link=(0, 1))
        assert source.seed_for(5, "extra", 128) == source.seed_for(5, "extra", 128)


class TestExchangedSeedSource:
    def test_same_link_seed_gives_same_bits(self):
        a = ExchangedSeedSource(link_seed=123456789)
        b = ExchangedSeedSource(link_seed=123456789)
        assert a.seed_for(2, "mp_prefix", 512) == b.seed_for(2, "mp_prefix", 512)

    def test_different_link_seeds_differ(self):
        a = ExchangedSeedSource(link_seed=1 | (5 << 64))
        b = ExchangedSeedSource(link_seed=2 | (6 << 64))
        assert a.seed_for(0, "mp_prefix", 512) != b.seed_for(0, "mp_prefix", 512)

    def test_slots_do_not_overlap(self):
        source = ExchangedSeedSource(link_seed=987654321, slot_capacity_bits=64)
        a = source.seed_for(0, "mp_counter", 64)
        b = source.seed_for(0, "mp_prefix", 64)
        c = source.seed_for(1, "mp_counter", 64)
        assert len({a, b, c}) >= 2  # overwhelmingly likely to be distinct

    def test_capacity_enforced(self):
        source = ExchangedSeedSource(link_seed=1, slot_capacity_bits=128)
        with pytest.raises(ValueError):
            source.seed_for(0, "mp_prefix", 256)

    def test_negative_iteration_rejected(self):
        source = ExchangedSeedSource(link_seed=1)
        with pytest.raises(ValueError):
            source.seed_for(-1, "mp_prefix", 64)

    def test_unknown_purpose_rejected(self):
        source = ExchangedSeedSource(link_seed=1)
        with pytest.raises(ValueError):
            source.seed_for(0, "nope", 64)
