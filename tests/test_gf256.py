"""Unit and property tests for GF(256) arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.gf256 import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    poly_add,
    poly_deg,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
    poly_trim,
)

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)
polys = st.lists(elements, min_size=1, max_size=12)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert gf_add(a, b) == (a ^ b) == gf_add(b, a)

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert gf_add(a, a) == 0

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(nonzero, nonzero)
    def test_division(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    @given(nonzero, st.integers(0, 600))
    def test_pow_matches_repeated_multiplication(self, a, exponent):
        expected = 1
        for _ in range(exponent % 255):
            expected = gf_mul(expected, a)
        assert gf_pow(a, exponent) == expected

    def test_pow_of_zero(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0


class TestPolynomials:
    def test_trim(self):
        assert poly_trim([1, 2, 0, 0]) == [1, 2]
        assert poly_trim([0, 0]) == [0]

    def test_degree(self):
        assert poly_deg([5]) == 0
        assert poly_deg([0, 0, 3]) == 2

    @given(polys, polys)
    def test_add_commutative(self, a, b):
        assert poly_add(a, b) == poly_add(b, a)

    @given(polys)
    def test_add_self_is_zero(self, a):
        assert poly_add(a, a) == [0]

    @given(polys, polys, elements)
    def test_mul_matches_evaluation(self, a, b, x):
        product = poly_mul(a, b)
        assert poly_eval(product, x) == gf_mul(poly_eval(a, x), poly_eval(b, x))

    @given(polys, elements, elements)
    def test_scale_matches_evaluation(self, a, scalar, x):
        assert poly_eval(poly_scale(a, scalar), x) == gf_mul(scalar, poly_eval(a, x))

    @given(polys, polys)
    def test_divmod_identity(self, numerator, denominator):
        if poly_trim(denominator) == [0]:
            with pytest.raises(ZeroDivisionError):
                poly_divmod(numerator, denominator)
            return
        quotient, remainder = poly_divmod(numerator, denominator)
        reconstructed = poly_add(poly_mul(quotient, denominator), remainder)
        assert reconstructed == poly_trim(numerator)
        assert poly_deg(remainder) < max(poly_deg(denominator), 1) or poly_trim(remainder) == [0]
