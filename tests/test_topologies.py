"""Unit tests for the topology generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topologies import (
    binary_tree_topology,
    build_topology,
    complete_topology,
    grid_topology,
    line_topology,
    random_connected_topology,
    ring_topology,
    star_topology,
)


class TestNamedTopologies:
    def test_line(self):
        graph = line_topology(5)
        assert graph.num_edges == 4
        assert graph.max_degree() == 2

    def test_ring(self):
        graph = ring_topology(5)
        assert graph.num_edges == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes)

    def test_star(self):
        graph = star_topology(6)
        assert graph.num_edges == 5
        assert graph.degree(0) == 5

    def test_clique(self):
        graph = complete_topology(5)
        assert graph.num_edges == 10

    def test_grid(self):
        graph = grid_topology(2, 3)
        assert graph.num_nodes == 6
        assert graph.num_edges == 7  # 2*2 vertical + 3 horizontal? -> rows*(cols-1) + cols*(rows-1) = 2*2+3*1=7
        assert graph.is_connected()

    def test_binary_tree(self):
        graph = binary_tree_topology(7)
        assert graph.num_edges == 6
        assert graph.is_connected()

    def test_minimum_sizes_rejected(self):
        with pytest.raises(ValueError):
            line_topology(1)
        with pytest.raises(ValueError):
            ring_topology(2)
        with pytest.raises(ValueError):
            grid_topology(0, 3)


class TestRandomTopology:
    def test_connected_and_reproducible(self):
        a = random_connected_topology(10, 0.2, seed=3)
        b = random_connected_topology(10, 0.2, seed=3)
        assert a.is_connected()
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = random_connected_topology(12, 0.3, seed=1)
        b = random_connected_topology(12, 0.3, seed=2)
        assert a.edges != b.edges

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            random_connected_topology(5, 1.5)

    @given(st.integers(2, 20), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_always_connected(self, nodes, seed):
        graph = random_connected_topology(nodes, 0.1, seed=seed)
        assert graph.is_connected()
        assert graph.num_nodes == nodes


class TestBuilder:
    @pytest.mark.parametrize("name", ["line", "ring", "star", "clique", "binary_tree", "random", "grid"])
    def test_build_named(self, name):
        graph = build_topology(name, 6, seed=1)
        assert graph.is_connected()
        assert graph.num_nodes >= 6

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_topology("torus", 5)
