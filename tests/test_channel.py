"""Unit tests for channel symbols, corruption classification and statistics."""

from __future__ import annotations

import random

import pytest

from repro.network.channel import (
    ChannelStats,
    TransmissionContext,
    WindowContext,
    apply_additive_noise,
    classify_corruption,
)


class TestAdditiveNoise:
    def test_identity_offset(self):
        assert apply_additive_noise(0, 0) == 0
        assert apply_additive_noise(None, 0) is None

    def test_substitution(self):
        assert apply_additive_noise(0, 1) == 1
        assert apply_additive_noise(1, 2) == 0

    def test_deletion(self):
        # 1 + 1 = 2 -> the "no message" symbol
        assert apply_additive_noise(1, 1) is None
        assert apply_additive_noise(0, 2) is None

    def test_insertion(self):
        assert apply_additive_noise(None, 1) == 0
        assert apply_additive_noise(None, 2) == 1

    def test_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            apply_additive_noise(0, 3)

    def test_nonzero_offset_always_changes_symbol(self):
        for sent in (0, 1, None):
            for offset in (1, 2):
                assert apply_additive_noise(sent, offset) != sent


class TestClassification:
    def test_clean(self):
        assert classify_corruption(0, 0) is None
        assert classify_corruption(None, None) is None

    def test_substitution(self):
        assert classify_corruption(0, 1) == "substitution"

    def test_deletion(self):
        assert classify_corruption(1, None) == "deletion"

    def test_insertion(self):
        assert classify_corruption(None, 1) == "insertion"


def _ctx(phase="simulation", sender=0, receiver=1, round_index=0) -> TransmissionContext:
    return TransmissionContext(round_index=round_index, sender=sender, receiver=receiver, phase=phase)


class TestChannelStats:
    def test_counts_transmissions_and_corruptions(self):
        stats = ChannelStats()
        stats.record(_ctx(), 1, 1)
        stats.record(_ctx(), 1, 0)
        stats.record(_ctx(), 0, None)
        stats.record(_ctx(), None, 1)
        assert stats.transmissions == 3  # the insertion slot carried no sent symbol
        assert stats.substitutions == 1
        assert stats.deletions == 1
        assert stats.insertions == 1
        assert stats.corruptions == 3

    def test_noise_fraction(self):
        stats = ChannelStats()
        assert stats.noise_fraction() == 0.0
        for _ in range(9):
            stats.record(_ctx(), 1, 1)
        stats.record(_ctx(), 1, 0)
        assert stats.noise_fraction() == pytest.approx(0.1)

    def test_per_phase_accounting(self):
        stats = ChannelStats()
        stats.record(_ctx(phase="meeting_points"), 1, 1)
        stats.record(_ctx(phase="simulation"), 1, 0)
        assert stats.transmissions_by_phase == {"meeting_points": 1, "simulation": 1}
        assert stats.corruptions_by_phase == {"simulation": 1}

    def test_per_link_accounting(self):
        stats = ChannelStats()
        stats.record(_ctx(sender=2, receiver=3), 1, 0)
        stats.record(_ctx(sender=2, receiver=3), 0, 1)
        assert stats.corruptions_by_link == {(2, 3): 2}

    def test_snapshot_keys(self):
        stats = ChannelStats()
        stats.record(_ctx(), 1, 1)
        snapshot = stats.snapshot()
        assert snapshot["transmissions"] == 1
        assert snapshot["corruptions"] == 0
        assert "noise_fraction" in snapshot


class TestRecordWindow:
    def _window_ctx(self, link=(0, 1), phase="simulation"):
        return WindowContext(link=link, phase=phase, iteration=2, base_round=5)

    def test_counts_one_window_like_per_slot_records(self):
        ctx = self._window_ctx()
        sent = [1, 0, None, 1, None]
        received = [1, 1, None, None, 0]  # clean, substitution, clean, deletion, insertion
        windowed = ChannelStats()
        windowed.record_window(ctx, sent, received)
        per_slot = ChannelStats()
        for offset, (s, r) in enumerate(zip(sent, received)):
            per_slot.record(ctx.slot(offset), s, r)
        assert windowed == per_slot
        assert windowed.transmissions == 3
        assert windowed.delivered_symbols == 3
        assert windowed.corruptions == 3

    def test_all_silent_window_is_a_no_op(self):
        stats = ChannelStats()
        stats.record_window(self._window_ctx(), [None] * 4, [None] * 4)
        assert stats == ChannelStats()

    def test_matches_per_slot_on_random_windows(self):
        rng = random.Random(13)
        windowed = ChannelStats()
        per_slot = ChannelStats()
        for index in range(50):
            ctx = WindowContext(
                link=(rng.randint(0, 3), rng.randint(4, 7)),
                phase=rng.choice(["simulation", "meeting_points", "rewind"]),
                iteration=index,
                base_round=3 * index,
            )
            width = rng.randint(0, 10)
            sent = [rng.choice([0, 1, None]) for _ in range(width)]
            received = [rng.choice([0, 1, None]) for _ in range(width)]
            windowed.record_window(ctx, sent, received)
            for offset, (s, r) in enumerate(zip(sent, received)):
                per_slot.record(ctx.slot(offset), s, r)
        assert windowed == per_slot
