"""Unit tests for repro.network.graph."""

from __future__ import annotations

import pytest

from repro.network.graph import Graph, edge_key
from repro.network.topologies import line_topology, ring_topology


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            edge_key(2, 2)


class TestGraphConstruction:
    def test_from_edges(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)

    def test_add_edge_idempotent(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.num_edges == 1

    def test_rejects_out_of_range_nodes(self):
        graph = Graph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 5)

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            Graph(0)

    def test_directed_edges_both_directions(self):
        graph = Graph.from_edges(3, [(0, 1)])
        assert set(graph.directed_edges()) == {(0, 1), (1, 0)}

    def test_contains_and_iter(self):
        graph = Graph.from_edges(3, [(0, 2)])
        assert (2, 0) in graph
        assert list(graph) == [0, 1, 2]


class TestNeighborsAndDegrees:
    def test_neighbors_sorted(self):
        graph = Graph.from_edges(4, [(2, 0), (2, 3), (2, 1)])
        assert graph.neighbors(2) == [0, 1, 3]

    def test_degree_and_max_degree(self):
        graph = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(3) == 1
        assert graph.max_degree() == 3


class TestTraversals:
    def test_bfs_order_starts_at_root(self):
        graph = line_topology(4)
        assert graph.bfs_order(0) == [0, 1, 2, 3]

    def test_bfs_parents(self):
        graph = line_topology(4)
        parents = graph.bfs_parents(0)
        assert parents[0] is None
        assert parents[3] == 2

    def test_distances(self):
        graph = line_topology(5)
        distances = graph.distances_from(0)
        assert distances[4] == 4
        assert distances[0] == 0

    def test_connectivity(self):
        connected = line_topology(3)
        assert connected.is_connected()
        disconnected = Graph.from_edges(4, [(0, 1)])
        assert not disconnected.is_connected()
        with pytest.raises(ValueError):
            disconnected.validate_connected_simple()

    def test_diameter_line_and_ring(self):
        assert line_topology(6).diameter() == 5
        assert ring_topology(6).diameter() == 3

    def test_diameter_requires_connectivity(self):
        graph = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            graph.diameter()

    def test_copy_is_independent(self):
        graph = line_topology(3)
        clone = graph.copy()
        clone.add_edge(0, 2)
        assert not graph.has_edge(0, 2)
        assert clone.has_edge(0, 2)
