"""Unit and property tests for the binary block code (randomness-exchange ECC)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.block_code import BinaryBlockCode, DecodingError


class TestLayout:
    def test_basic_parameters(self):
        code = BinaryBlockCode(message_bits=128)
        assert code.message_symbols == 16
        assert code.codeword_bits == 16 * 3 * 8
        assert code.rate == pytest.approx(1 / 3)

    def test_long_message_is_chunked(self):
        code = BinaryBlockCode(message_bits=8 * 300)  # 300 bytes > 255/3 per block
        assert code.codeword_bits >= 3 * 8 * 300
        assert code.rate <= 1 / 3 + 0.01

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BinaryBlockCode(message_bits=0)
        with pytest.raises(ValueError):
            BinaryBlockCode(message_bits=8, expansion=1)
        with pytest.raises(ValueError):
            BinaryBlockCode(message_bits=8, max_block_symbols=999)

    def test_encode_rejects_wrong_length(self):
        code = BinaryBlockCode(message_bits=16)
        with pytest.raises(ValueError):
            code.encode([0] * 15)


class TestRoundtrip:
    def test_clean_roundtrip(self):
        code = BinaryBlockCode(message_bits=64)
        message = [i % 2 for i in range(64)]
        assert code.decode(code.encode(message)) == message

    def test_bit_flips_within_radius(self):
        code = BinaryBlockCode(message_bits=64)
        message = [1] * 64
        word = code.encode(message)
        # flip a handful of bits inside the same byte so only one RS symbol is hit
        for offset in (0, 1, 2):
            word[offset] ^= 1
        assert code.decode(word) == message

    def test_erasures(self):
        code = BinaryBlockCode(message_bits=64)
        message = [i % 2 for i in range(64)]
        word = code.encode(message)
        for index in range(0, 40):
            word[index] = None
        assert code.decode(word) == message

    def test_truncated_word_is_padded_with_erasures(self):
        code = BinaryBlockCode(message_bits=32)
        message = [1, 0] * 16
        word = code.encode(message)
        assert code.decode(word[: len(word) - 30]) == message

    def test_hopeless_corruption_raises(self):
        code = BinaryBlockCode(message_bits=64)
        word = code.encode([0] * 64)
        rng = random.Random(1)
        corrupted = [rng.getrandbits(1) for _ in word]
        with pytest.raises(DecodingError):
            # either a decoding error, or (rarely) a silent miscorrection;
            # force failure by checking the value too
            decoded = code.decode(corrupted)
            if decoded != [0] * 64:
                raise DecodingError("miscorrected")


@settings(max_examples=30, deadline=None)
@given(st.integers(8, 260), st.integers(0, 2**32 - 1))
def test_random_low_rate_noise_roundtrip(message_bits, seed):
    """A few percent of random bit corruptions must always be corrected."""
    rng = random.Random(seed)
    code = BinaryBlockCode(message_bits=message_bits)
    message = [rng.getrandbits(1) for _ in range(message_bits)]
    word = code.encode(message)
    corruptions = int(0.03 * len(word))
    for index in rng.sample(range(len(word)), corruptions):
        word[index] = None if rng.random() < 0.5 else 1 - word[index]
    assert code.decode(word) == message
