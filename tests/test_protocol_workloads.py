"""Tests for the concrete protocol workloads."""

from __future__ import annotations

import pytest

from repro.network.topologies import complete_topology, line_topology, ring_topology, star_topology
from repro.protocols.aggregation import AggregationProtocol
from repro.protocols.gossip import PairwiseExchangeProtocol, ParityGossipProtocol
from repro.protocols.line_example import LineExampleProtocol
from repro.protocols.random_protocol import RandomProtocol
from repro.protocols.token_ring import TokenRingProtocol


class TestParityGossip:
    def test_fully_utilised_schedule(self):
        graph = complete_topology(4)
        protocol = ParityGossipProtocol(graph, {i: 0 for i in range(4)}, phases=3)
        assert protocol.communication_complexity() == 2 * graph.num_edges * 3

    def test_missing_inputs_rejected(self):
        graph = line_topology(3)
        with pytest.raises(ValueError):
            ParityGossipProtocol(graph, {0: 1}, phases=2)

    def test_invalid_phase_count(self):
        graph = line_topology(3)
        with pytest.raises(ValueError):
            ParityGossipProtocol(graph, {i: 0 for i in range(3)}, phases=0)

    def test_invalid_input_bit(self):
        graph = line_topology(3)
        protocol = ParityGossipProtocol(graph, {0: 0, 1: 2, 2: 0}, phases=2)
        with pytest.raises(ValueError):
            protocol.run_noiseless()

    def test_outputs_depend_on_inputs(self):
        graph = line_topology(4)
        a = ParityGossipProtocol(graph, {0: 0, 1: 0, 2: 0, 3: 0}, phases=3).run_noiseless()
        b = ParityGossipProtocol(graph, {0: 1, 1: 0, 2: 0, 3: 0}, phases=3).run_noiseless()
        assert a.outputs != b.outputs


class TestPairwiseExchange:
    def test_single_round(self):
        graph = star_topology(4)
        protocol = PairwiseExchangeProtocol(graph, {i: i % 2 for i in range(4)})
        assert protocol.num_rounds == 1
        outputs = protocol.run_noiseless().outputs
        # the centre hears every leaf's bit
        assert outputs[0] == (1, 0, 1)

    def test_leaf_hears_centre(self):
        graph = star_topology(4)
        outputs = PairwiseExchangeProtocol(graph, {0: 1, 1: 0, 2: 0, 3: 0}).run_noiseless().outputs
        assert outputs[1] == (1,)


class TestAggregation:
    def test_every_party_learns_the_sum(self):
        graph = line_topology(7)
        inputs = {i: 3 * i + 1 for i in range(7)}
        protocol = AggregationProtocol(graph, inputs, value_bits=8)
        outputs = protocol.run_noiseless().outputs
        assert all(value == protocol.expected_total() for value in outputs.values())

    def test_sum_is_modular(self):
        graph = star_topology(4)
        protocol = AggregationProtocol(graph, {0: 7, 1: 7, 2: 7, 3: 7}, value_bits=4)
        assert protocol.expected_total() == (28 % 16)
        outputs = protocol.run_noiseless().outputs
        assert all(value == 28 % 16 for value in outputs.values())

    def test_input_range_validated(self):
        graph = line_topology(3)
        with pytest.raises(ValueError):
            AggregationProtocol(graph, {0: 99, 1: 0, 2: 0}, value_bits=4)

    def test_schedule_is_sparse(self):
        graph = line_topology(4)
        protocol = AggregationProtocol(graph, {i: 1 for i in range(4)}, value_bits=3)
        assert all(len(round_links) == 1 for round_links in protocol.schedule())

    def test_works_on_any_connected_topology(self):
        graph = complete_topology(5)
        protocol = AggregationProtocol(graph, {i: i for i in range(5)}, value_bits=5)
        outputs = protocol.run_noiseless().outputs
        assert all(value == 10 for value in outputs.values())


class TestLineExample:
    def test_requires_path_edges(self):
        # A star is missing the (1, 2) edge of the line, so it is rejected;
        # graphs that contain the whole path (e.g. a ring) are fine.
        with pytest.raises(ValueError):
            LineExampleProtocol(star_topology(4), {i: 0 for i in range(4)})
        LineExampleProtocol(ring_topology(4), {i: 0 for i in range(4)})

    def test_requires_three_parties(self):
        with pytest.raises(ValueError):
            LineExampleProtocol(line_topology(2), {0: 0, 1: 0})

    def test_schedule_shape(self):
        graph = line_topology(5)
        protocol = LineExampleProtocol(graph, {i: 0 for i in range(5)}, blocks=2, pingpong_rounds=4)
        # per block: (n-2) relay rounds + 4 ping-pong rounds
        assert protocol.num_rounds == 2 * (3 + 4)
        assert all(len(round_links) == 1 for round_links in protocol.schedule())

    def test_pingpong_alternates_between_last_two(self):
        graph = line_topology(4)
        protocol = LineExampleProtocol(graph, {i: 0 for i in range(4)}, blocks=1, pingpong_rounds=4)
        schedule = protocol.schedule()
        pingpong = schedule[2:]
        assert pingpong[0] == [(2, 3)]
        assert pingpong[1] == [(3, 2)]

    def test_outputs_sensitive_to_inputs(self):
        graph = line_topology(5)
        a = LineExampleProtocol(graph, {i: 0 for i in range(5)}, blocks=2).run_noiseless()
        b = LineExampleProtocol(graph, {0: 1, 1: 0, 2: 0, 3: 0, 4: 0}, blocks=2).run_noiseless()
        assert a.outputs != b.outputs


class TestTokenRing:
    def test_requires_ring(self):
        with pytest.raises(ValueError):
            TokenRingProtocol(line_topology(4), {i: 0 for i in range(4)})

    def test_final_token_value(self):
        graph = ring_topology(4)
        inputs = {0: 1, 1: 2, 2: 3, 3: 4}
        protocol = TokenRingProtocol(graph, inputs, value_bits=6, laps=1)
        outputs = protocol.run_noiseless().outputs
        # party 0 receives the token after everyone (including itself) added once
        assert outputs[0] == sum(inputs.values()) % 64
        # party 1 last saw the token right after party 0 added its value
        assert outputs[1] == 1

    def test_two_laps_accumulate(self):
        graph = ring_topology(3)
        inputs = {0: 1, 1: 1, 2: 1}
        protocol = TokenRingProtocol(graph, inputs, value_bits=5, laps=2)
        outputs = protocol.run_noiseless().outputs
        assert outputs[0] == 6  # 2 laps * 3 parties * 1

    def test_input_range_validated(self):
        with pytest.raises(ValueError):
            TokenRingProtocol(ring_topology(3), {0: 99, 1: 0, 2: 0}, value_bits=4)

    def test_one_link_per_round(self):
        protocol = TokenRingProtocol(ring_topology(4), {i: 1 for i in range(4)}, value_bits=3)
        assert all(len(round_links) == 1 for round_links in protocol.schedule())


class TestRandomProtocol:
    def test_schedule_reproducible(self):
        graph = complete_topology(4)
        inputs = {i: i for i in range(4)}
        a = RandomProtocol(graph, inputs, num_rounds=12, density=0.3, seed=5)
        b = RandomProtocol(graph, inputs, num_rounds=12, density=0.3, seed=5)
        assert a.schedule() == b.schedule()

    def test_schedule_never_empty(self):
        graph = line_topology(3)
        protocol = RandomProtocol(graph, {i: 0 for i in range(3)}, num_rounds=3, density=0.01, seed=1)
        assert protocol.communication_complexity() >= 1

    def test_outputs_are_full_transcripts(self):
        graph = complete_topology(4)
        protocol = RandomProtocol(graph, {i: i for i in range(4)}, num_rounds=8, density=0.5, seed=2)
        execution = protocol.run_noiseless()
        for party, output in execution.outputs.items():
            assert output == tuple(sorted(execution.received[party].items()))

    def test_parameter_validation(self):
        graph = line_topology(3)
        with pytest.raises(ValueError):
            RandomProtocol(graph, {i: 0 for i in range(3)}, num_rounds=0)
        with pytest.raises(ValueError):
            RandomProtocol(graph, {i: 0 for i in range(3)}, density=0.0)
