"""Tests for the report serialisation and the command-line interface."""

from __future__ import annotations

import json


from repro.cli import build_parser, main
from repro.experiments.reporting import ExperimentReport, load_report


class TestExperimentReport:
    def test_columns_preserve_order(self):
        report = ExperimentReport("demo", rows=[{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert report.columns() == ["a", "b", "c"]

    def test_json_roundtrip(self, tmp_path):
        report = ExperimentReport("demo", rows=[{"a": 1}], parameters={"n": 5})
        path = report.save(tmp_path / "out.json")
        loaded = load_report(path)
        assert loaded.experiment == "demo"
        assert loaded.rows == [{"a": 1}]
        assert loaded.parameters == {"n": 5}

    def test_markdown_rendering(self, tmp_path):
        report = ExperimentReport("demo", rows=[{"a": 1.5}], parameters={"n": 5})
        text = report.to_markdown()
        assert "## demo" in text
        assert "n=5" in text
        path = report.save(tmp_path / "out.md")
        assert path.read_text().startswith("## demo")

    def test_to_json_is_valid_json(self):
        report = ExperimentReport("demo", rows=[{"a": 1}])
        parsed = json.loads(report.to_json())
        assert parsed["experiment"] == "demo"

    def test_empty_rows_markdown(self):
        assert "(no rows)" in ExperimentReport("demo", rows=[]).to_markdown()


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ("table1", "noise-sweep", "rate", "ablations", "simulate"):
            args = parser.parse_args([command] if command != "noise-sweep" else [command])
            assert hasattr(args, "func")

    def test_simulate_command_runs(self, capsys, tmp_path):
        output = tmp_path / "run.json"
        code = main(
            [
                "simulate",
                "--workload", "gossip",
                "--topology", "line",
                "--nodes", "4",
                "--scheme", "algorithm_crs",
                "--noise", "0.0",
                "--seed", "3",
                "--output", str(output),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "overhead" in captured
        data = json.loads(output.read_text())
        assert data["rows"][0]["success"] is True

    def test_rate_command_runs(self, capsys):
        code = main(
            [
                "rate",
                "--scheme", "algorithm_crs",
                "--topology", "line",
                "--nodes", "4",
                "--phases-grid", "4", "8",
                "--trials", "1",
            ]
        )
        assert code == 0
        assert "overhead" in capsys.readouterr().out

    def test_noise_sweep_command_runs(self, capsys):
        code = main(
            [
                "noise-sweep",
                "--scheme", "algorithm_crs",
                "--topology", "line",
                "--nodes", "4",
                "--phases", "4",
                "--multipliers", "0.5", "32",
                "--trials", "1",
            ]
        )
        assert code == 0
        assert "success_rate" in capsys.readouterr().out

    def test_table1_measured_only_runs(self, capsys, tmp_path):
        output = tmp_path / "table1.md"
        code = main(
            [
                "table1",
                "--topologies", "line",
                "--nodes", "4",
                "--phases", "4",
                "--trials", "1",
                "--measured-only",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert "Algorithm A" in capsys.readouterr().out
