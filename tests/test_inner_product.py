"""Tests for the inner-product hash (Definition 2.2, Lemma 2.3)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.inner_product import FINGERPRINT_BITS, InnerProductHash, fingerprint_bits


class TestFingerprint:
    def test_width_and_determinism(self):
        a = fingerprint_bits(b"hello")
        assert 0 <= a < (1 << FINGERPRINT_BITS)
        assert a == fingerprint_bits(b"hello")
        assert a != fingerprint_bits(b"hellp")

    def test_custom_width(self):
        assert fingerprint_bits(b"x", width=64) < (1 << 64)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            fingerprint_bits(b"x", width=7)


class TestInnerProductHash:
    def test_output_bits_validation(self):
        with pytest.raises(ValueError):
            InnerProductHash(0)

    def test_seed_length(self):
        hasher = InnerProductHash(8)
        assert hasher.seed_bits_required(128) == 1024
        with pytest.raises(ValueError):
            hasher.seed_bits_required(0)

    def test_digest_range_checks(self):
        hasher = InnerProductHash(4)
        with pytest.raises(ValueError):
            hasher.digest(16, 4, 0)  # value does not fit
        with pytest.raises(ValueError):
            hasher.digest(1, 4, 1 << 20)  # seed too long

    def test_zero_input_hashes_to_zero(self):
        hasher = InnerProductHash(8)
        seed = random.Random(0).getrandbits(hasher.seed_bits_required(32))
        assert hasher.digest(0, 32, seed) == 0

    def test_linear_in_input(self):
        """h(x) xor h(y) == h(x xor y) — the hash is GF(2)-linear per output bit."""
        hasher = InnerProductHash(6)
        rng = random.Random(3)
        seed = rng.getrandbits(hasher.seed_bits_required(64))
        for _ in range(20):
            x = rng.getrandbits(64)
            y = rng.getrandbits(64)
            assert hasher.digest(x, 64, seed) ^ hasher.digest(y, 64, seed) == hasher.digest(x ^ y, 64, seed)

    def test_digest_bits_interface(self):
        hasher = InnerProductHash(5)
        seed = random.Random(1).getrandbits(hasher.seed_bits_required(8))
        bits = hasher.digest_bits([1, 0, 1, 1, 0, 0, 0, 1], seed)
        assert len(bits) == 5
        assert set(bits) <= {0, 1}
        with pytest.raises(ValueError):
            hasher.digest_bits([], seed)

    def test_uniform_output_for_nonzero_input(self):
        """Lemma 2.3: over a uniform seed, the output of a fixed non-zero input is uniform."""
        hasher = InnerProductHash(2)
        rng = random.Random(5)
        counts = {value: 0 for value in range(4)}
        x = 0b1011
        for _ in range(800):
            seed = rng.getrandbits(hasher.seed_bits_required(4))
            counts[hasher.digest(x, 4, seed)] += 1
        for value, count in counts.items():
            assert 120 < count < 280  # expected 200 each

    def test_collision_probability_close_to_nominal(self):
        """Distinct inputs collide with probability about 2^-tau over the seed."""
        hasher = InnerProductHash(4)
        rng = random.Random(9)
        x = fingerprint_bits(b"left")
        y = fingerprint_bits(b"right")
        collisions = 0
        trials = 600
        for _ in range(trials):
            seed = rng.getrandbits(hasher.seed_bits_required(FINGERPRINT_BITS))
            if hasher.digest(x, FINGERPRINT_BITS, seed) == hasher.digest(y, FINGERPRINT_BITS, seed):
                collisions += 1
        assert collisions / trials < 4 * hasher.collision_probability()

    def test_collision_probability_property(self):
        assert InnerProductHash(8).collision_probability() == pytest.approx(1 / 256)

    @given(st.integers(1, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_same_input_same_seed_same_output(self, value, seed_base):
        hasher = InnerProductHash(8)
        seed = seed_base % (1 << hasher.seed_bits_required(32))
        assert hasher.digest(value, 32, seed) == hasher.digest(value, 32, seed)
